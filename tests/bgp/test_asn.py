"""Tests for ASN classification and the private 16-bit mapper."""

import pytest

from repro.bgp.asn import (
    AS_TRANS,
    Private16BitMapper,
    is_32bit_asn,
    is_private_asn,
    is_reserved_asn,
    is_routable_asn,
)


class TestClassification:
    def test_ordinary_asn_is_routable(self):
        assert is_routable_asn(3356)
        assert is_routable_asn(15169)

    def test_as_trans_is_reserved(self):
        assert is_reserved_asn(AS_TRANS)
        assert not is_routable_asn(AS_TRANS)

    def test_zero_and_negative_are_reserved(self):
        assert is_reserved_asn(0)
        assert is_reserved_asn(-5)

    def test_unassigned_block_is_reserved(self):
        assert is_reserved_asn(63488)
        assert is_reserved_asn(100000)
        assert is_reserved_asn(131071)
        assert not is_reserved_asn(131072)

    def test_private_16bit_range(self):
        assert is_private_asn(64512)
        assert is_private_asn(65534)
        assert not is_private_asn(64511)

    def test_private_32bit_range(self):
        assert is_private_asn(4200000000)
        assert not is_private_asn(4199999999)

    def test_private_is_not_routable(self):
        assert not is_routable_asn(64512)

    def test_32bit_detection(self):
        assert is_32bit_asn(65536)
        assert is_32bit_asn(200000)
        assert not is_32bit_asn(65535)

    def test_max_asn_boundary(self):
        assert is_reserved_asn(2**32 - 1)
        assert is_reserved_asn(2**32)


class TestPrivate16BitMapper:
    def test_16bit_asn_maps_to_itself(self):
        mapper = Private16BitMapper()
        assert mapper.register(6695) == 6695
        assert mapper.alias_for(6695) == 6695

    def test_32bit_asn_gets_private_alias(self):
        mapper = Private16BitMapper()
        alias = mapper.register(200000)
        assert 64512 <= alias <= 65534
        assert mapper.alias_for(200000) == alias
        assert mapper.resolve(alias) == 200000

    def test_registration_is_idempotent(self):
        mapper = Private16BitMapper()
        first = mapper.register(200001)
        second = mapper.register(200001)
        assert first == second
        assert len(mapper) == 1

    def test_distinct_asns_get_distinct_aliases(self):
        mapper = Private16BitMapper()
        aliases = {mapper.register(200000 + i) for i in range(10)}
        assert len(aliases) == 10

    def test_resolve_unknown_alias_returns_input(self):
        mapper = Private16BitMapper()
        assert mapper.resolve(64999) == 64999

    def test_alias_for_unregistered_32bit_raises(self):
        mapper = Private16BitMapper()
        with pytest.raises(KeyError):
            mapper.alias_for(300000)

    def test_try_alias_for_unregistered_returns_none(self):
        mapper = Private16BitMapper()
        assert mapper.try_alias_for(300000) is None
        assert mapper.try_alias_for(100) == 100

    def test_register_all_and_mapping(self):
        mapper = Private16BitMapper()
        mapper.register_all([200000, 200001, 42])
        mapping = mapper.mapping()
        assert set(mapping) == {200000, 200001}

    def test_space_exhaustion(self):
        mapper = Private16BitMapper(start=65533)
        mapper.register(400000)
        mapper.register(400001)
        with pytest.raises(OverflowError):
            mapper.register(400002)

    def test_invalid_start_rejected(self):
        with pytest.raises(ValueError):
            Private16BitMapper(start=1000)
