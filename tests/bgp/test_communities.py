"""Tests for the BGP community attribute."""

import pytest

from repro.bgp.communities import Community, format_community_set, parse_community_set


class TestCommunity:
    def test_parse_and_str(self):
        community = Community.parse("6695:8359")
        assert community.high == 6695
        assert community.low == 8359
        assert str(community) == "6695:8359"

    def test_packed_value_roundtrip(self):
        community = Community(0, 5410)
        assert Community.from_int(community.value) == community

    def test_value_packing(self):
        assert Community(1, 2).value == (1 << 16) | 2

    @pytest.mark.parametrize("bad", ["6695", "6695:", ":123", "a:b", "1:2:3"])
    def test_invalid_strings_rejected(self, bad):
        with pytest.raises(ValueError):
            Community.parse(bad)

    @pytest.mark.parametrize("high,low", [(-1, 0), (0, -1), (65536, 0), (0, 65536)])
    def test_out_of_range_rejected(self, high, low):
        with pytest.raises(ValueError):
            Community(high, low)

    def test_from_int_out_of_range(self):
        with pytest.raises(ValueError):
            Community.from_int(2**32)

    def test_well_known_communities(self):
        assert Community.no_export().is_well_known()
        assert Community.no_advertise().is_well_known()
        assert not Community(6695, 6695).is_well_known()

    def test_equality_hash_and_ordering(self):
        a = Community.parse("0:6695")
        b = Community(0, 6695)
        c = Community(6695, 0)
        assert a == b and hash(a) == hash(b)
        assert a < c

    def test_immutability(self):
        community = Community(1, 2)
        with pytest.raises(AttributeError):
            community.high = 5


class TestCommunitySets:
    def test_parse_community_set(self):
        communities = parse_community_set("0:6695 6695:8359 6695:8447")
        assert Community(0, 6695) in communities
        assert len(communities) == 3

    def test_format_is_sorted_and_roundtrips(self):
        communities = parse_community_set("6695:8447 0:6695 6695:8359")
        text = format_community_set(communities)
        assert text == "0:6695 6695:8359 6695:8447"
        assert parse_community_set(text) == communities
