"""Differential harness: batched backend vs frontier vs reference.

The batched engine must reproduce the frontier engine *exactly* —
fragment content and order, Adj-RIB-In offers, touched order — on
arbitrary policy-annotated topologies, and all three backends must
agree on links and visibility over generator-built internets across
randomized regime knobs.  Every future backend gets trust the same way:
add it to :data:`ALL_BACKENDS` and the whole suite exercises it.
"""

from __future__ import annotations

import random

import pytest

from repro.bgp.communities import Community
from repro.bgp.policy import Relationship
from repro.bgp.prefix import Prefix
from repro.bgp.propagation import (
    BACKENDS,
    Adjacency,
    OriginSpec,
    PropagationEngine,
    adjacencies_from_index,
    bidirectional_adjacencies,
)
from repro.runtime.batched import (
    BatchedPathStore,
    PropagationPlan,
    numpy_available,
)
from repro.runtime.context import PipelineContext
from repro.runtime.snapshot import restore_context, snapshot_context
from repro.topology.generator import GeneratorConfig, InternetGenerator

requires_numpy = pytest.mark.skipif(
    not numpy_available(), reason="batched backend requires numpy")

ALL_BACKENDS = BACKENDS


def random_internet(rng, num_ases=30):
    """A random policy-annotated adjacency set (providers, bilateral and
    RS peering with communities, opaque route servers, siblings)."""
    asns = [64500 + i for i in range(num_ases)]
    adjacencies = []
    linked = set()

    def link(a, b):
        return (min(a, b), max(a, b))

    for i in range(1, num_ases):
        for provider in rng.sample(asns[:i], k=min(i, rng.randint(1, 2))):
            linked.add(link(asns[i], provider))
            adjacencies.extend(bidirectional_adjacencies(
                asns[i], provider, Relationship.PROVIDER))
    for _ in range(num_ases):
        a, b = rng.sample(asns, 2)
        if link(a, b) in linked:
            continue
        linked.add(link(a, b))
        adjacencies.append(Adjacency(a, b, Relationship.PEER))
        adjacencies.append(Adjacency(b, a, Relationship.PEER))
    for _ in range(num_ases // 2):
        a, b = rng.sample(asns, 2)
        if link(a, b) in linked:
            continue
        linked.add(link(a, b))
        transparent = rng.random() < 0.5
        adjacencies.append(Adjacency(
            a, b, Relationship.RS_PEER,
            communities=frozenset({Community(6695, a & 0xFFFF)}),
            via_rs_asn=65010, rs_transparent=transparent))
        adjacencies.append(Adjacency(
            b, a, Relationship.RS_PEER,
            communities=frozenset({Community(6695, b & 0xFFFF)}),
            via_rs_asn=65010, rs_transparent=transparent))
    for _ in range(3):
        a, b = rng.sample(asns, 2)
        if link(a, b) in linked:
            continue
        linked.add(link(a, b))
        adjacencies.append(Adjacency(a, b, Relationship.SIBLING))
        adjacencies.append(Adjacency(b, a, Relationship.SIBLING))
    return asns, adjacencies


def random_origins(rng, asns, count=10):
    origins = []
    for asn in rng.sample(asns, k=min(len(asns), count)):
        communities = frozenset({Community(0, asn & 0xFFFF)}) \
            if rng.random() < 0.3 else frozenset()
        origins.append(OriginSpec(
            asn=asn,
            prefixes=[Prefix.from_octets(
                10, (asn >> 8) & 0xFF, asn & 0xFF, 0, 24)],
            communities=communities))
    return origins


def fragment_key(routes):
    """Order-sensitive content signature of a fragment list."""
    return [(r.asn, r.path, r.communities, r.provenance, r.learned_from)
            for r in routes]


# -- exact frontier equivalence ------------------------------------------------


@requires_numpy
@pytest.mark.parametrize("seed", [1, 7, 20130507, 424242, 999983])
def test_batched_fragments_bit_identical_to_frontier(seed):
    """Best fragments AND offered (Adj-RIB-In) fragments match the
    frontier engine exactly, including discovery/offer order."""
    rng = random.Random(seed)
    asns, adjacencies = random_internet(rng)
    origins = random_origins(rng, asns)
    observers = rng.sample(asns, k=12)
    alt = observers[:5]

    frontier = PipelineContext.from_adjacencies(adjacencies).engine(
        record_at=observers, record_alternatives_at=alt)
    batched = PipelineContext.from_adjacencies(adjacencies).engine(
        record_at=observers, record_alternatives_at=alt, backend="batched")
    for spec, got_f, got_b in zip(origins,
                                  frontier.batch_fragments(origins),
                                  batched.batch_fragments(origins)):
        assert fragment_key(got_f[0]) == fragment_key(got_b[0]), \
            (seed, spec.asn, "best")
        assert fragment_key(got_f[1]) == fragment_key(got_b[1]), \
            (seed, spec.asn, "offered")


@requires_numpy
@pytest.mark.parametrize("seed", [3, 31337])
def test_batched_record_everything_matches_frontier(seed):
    """record_at=None (record every AS) is also bit-identical."""
    rng = random.Random(seed)
    asns, adjacencies = random_internet(rng, num_ases=40)
    origins = random_origins(rng, asns, count=15)
    frontier = PipelineContext.from_adjacencies(adjacencies).engine()
    batched = PipelineContext.from_adjacencies(adjacencies).engine(
        backend="batched")
    for got_f, got_b in zip(frontier.batch_fragments(origins),
                            batched.batch_fragments(origins)):
        assert fragment_key(got_f[0]) == fragment_key(got_b[0])


@requires_numpy
def test_batched_propagation_result_matches_frontier():
    rng = random.Random(99)
    asns, adjacencies = random_internet(rng)
    origins = random_origins(rng, asns)
    fast = PropagationEngine(adjacencies).propagate(origins)
    batched = PropagationEngine(adjacencies, backend="batched").propagate(
        origins)
    assert fast.visible_links() == batched.visible_links()
    for origin in origins:
        for asn in asns:
            route_f = fast.best_route(asn, origin.asn)
            route_b = batched.best_route(asn, origin.asn)
            assert (route_f is None) == (route_b is None)
            if route_f is not None:
                assert fragment_key([route_f]) == fragment_key([route_b])


# -- property-based three-backend differential --------------------------------


def _random_generator_config(rng) -> GeneratorConfig:
    """A seeded random regime: phase selection plus hypergiant /
    private-peering / bilateral knobs."""
    from repro.topology.phases import DEFAULT_PHASE_ORDER
    phases = list(DEFAULT_PHASE_ORDER)
    for optional in ("sibling-links", "backbone-peering",
                     "private-peering"):
        if rng.random() < 0.35:
            phases.remove(optional)
    low = rng.randint(1, 3)
    return GeneratorConfig(
        seed=rng.randrange(1 << 30),
        scale=rng.uniform(0.05, 0.09),
        ixp_member_scale=rng.uniform(0.04, 0.08),
        sibling_pair_fraction=rng.choice([0.0, 0.01, 0.05]),
        num_hypergiants=rng.randint(2, 5),
        hypergiant_ixp_presence=rng.uniform(0.3, 1.0),
        hypergiant_private_peering_probability=rng.uniform(0.0, 0.15),
        bilateral_peer_range=(low, low + rng.randint(0, 5)),
        content_multiplier=rng.choice([0.8, 1.0, 1.6]),
        phases=tuple(phases),
    )


@requires_numpy
@pytest.mark.parametrize("seed", [2013, 4242, 77])
def test_backends_agree_on_generated_internets(seed):
    """Frontier, batched and reference backends produce identical links
    and visibility sets (and frontier/batched identical best routes) on
    generator-built internets across randomized regime knobs."""
    rng = random.Random(seed)
    config = _random_generator_config(rng)
    internet = InternetGenerator(config).generate()
    graph = internet.graph
    origin_pool = [node.asn for node in graph.nodes() if node.prefixes]
    origins = [OriginSpec(asn=asn, prefixes=list(graph.prefixes_of(asn)))
               for asn in sorted(rng.sample(origin_pool,
                                            min(25, len(origin_pool))))]
    observers = sorted(rng.sample(graph.asns(), k=min(30, len(graph))))

    results = {}
    for backend in ALL_BACKENDS:
        context = PipelineContext.from_graph(graph, backend=backend)
        engine = context.engine(record_at=observers)
        results[backend] = engine.propagate(origins)

    frontier = results["frontier"]
    for backend in ALL_BACKENDS[1:]:
        assert frontier.visible_links() == results[backend].visible_links(), \
            (seed, backend)
    for origin in origins:
        for asn in observers:
            route_f = frontier.best_route(asn, origin.asn)
            route_b = results["batched"].best_route(asn, origin.asn)
            route_r = results["reference"].best_route(asn, origin.asn)
            assert (route_f is None) == (route_b is None) == (route_r is None)
            if route_f is None:
                continue
            assert fragment_key([route_f]) == fragment_key([route_b]), \
                (seed, origin.asn, asn)
            assert fragment_key([route_f]) == fragment_key([route_r]), \
                (seed, origin.asn, asn)


# -- reference-backend plumbing ------------------------------------------------


def test_adjacencies_from_index_round_trip():
    """Index -> adjacency reconstruction preserves propagation semantics
    (same links and routes through a freshly built engine)."""
    rng = random.Random(5)
    asns, adjacencies = random_internet(rng)
    origins = random_origins(rng, asns)
    context = PipelineContext.from_adjacencies(adjacencies)
    rebuilt = adjacencies_from_index(context.index)
    assert len(rebuilt) == len(adjacencies)
    direct = PropagationEngine(adjacencies).propagate(origins)
    rebuilt_result = PropagationEngine(rebuilt).propagate(origins)
    assert direct.visible_links() == rebuilt_result.visible_links()


def test_reference_backend_selector():
    rng = random.Random(6)
    asns, adjacencies = random_internet(rng)
    origins = random_origins(rng, asns, count=5)
    frontier = PropagationEngine(adjacencies).propagate(origins)
    reference = PropagationEngine(
        adjacencies, backend="reference").propagate(origins)
    assert frontier.visible_links() == reference.visible_links()


# -- unit-level pieces ---------------------------------------------------------


def test_unknown_backend_rejected():
    adjacencies = [Adjacency(1, 2, Relationship.PEER),
                   Adjacency(2, 1, Relationship.PEER)]
    with pytest.raises(ValueError, match="unknown propagation backend"):
        PropagationEngine(adjacencies, backend="warp-drive")
    with pytest.raises(ValueError, match="unknown propagation backend"):
        PipelineContext.from_adjacencies(adjacencies, backend="warp-drive")


@requires_numpy
def test_plan_is_cached_on_context():
    rng = random.Random(11)
    _asns, adjacencies = random_internet(rng)
    context = PipelineContext.from_adjacencies(adjacencies)
    plan = context.plan
    assert plan is context.plan
    assert isinstance(plan, PropagationPlan)
    summary = plan.summary()
    assert summary["nodes"] == context.index.num_nodes
    assert (summary["customer_phase_edges"]
            == context.index.customer_edges.num_edges)


@requires_numpy
def test_batched_path_store_matches_tuple_semantics():
    import numpy as np
    store = BatchedPathStore(capacity=2)
    ids = store.alloc(np.array([10, 20]), np.array([-1, -1]))
    extended = store.alloc(np.array([30, 40]),
                           np.array([ids[0], ids[1]]))
    assert store.materialize(int(extended[0])) == (30, 10)
    assert store.materialize(int(extended[1])) == (40, 20)
    assert store.materialize(int(ids[0])) == (10,)
    assert store.materialize(-1) == ()
    assert len(store) == 4


def test_snapshot_carries_backend():
    rng = random.Random(12)
    _asns, adjacencies = random_internet(rng)
    context = PipelineContext.from_adjacencies(adjacencies,
                                               backend="batched")
    restored = restore_context(snapshot_context(context))
    assert restored.backend == "batched"
    assert restored.engine().backend == "batched"


@requires_numpy
def test_engine_inherits_context_backend_and_can_override():
    rng = random.Random(13)
    _asns, adjacencies = random_internet(rng)
    context = PipelineContext.from_adjacencies(adjacencies,
                                               backend="batched")
    assert context.engine().backend == "batched"
    assert context.engine(backend="frontier").backend == "frontier"


@requires_numpy
def test_route_cache_is_partitioned_per_backend():
    """Two backends on one shared context never alias memoised
    fragments (the cache key carries the backend)."""
    rng = random.Random(14)
    asns, adjacencies = random_internet(rng)
    origins = random_origins(rng, asns, count=3)
    context = PipelineContext.from_adjacencies(adjacencies)
    observers = asns[:8]
    context.engine(record_at=observers).batch_fragments(origins)
    cached_before = len(context.route_cache)
    assert cached_before == len(origins)
    context.engine(record_at=observers,
                   backend="batched").batch_fragments(origins)
    assert len(context.route_cache) == 2 * cached_before
