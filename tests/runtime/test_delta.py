"""Unit tests of the delta-recompute plane (`repro.runtime.delta`).

The equivalence of full timeline replays against from-scratch rebuilds
lives in ``tests/scenarios/test_events.py``; here the affected-set
machinery and the result-patching contract are exercised directly on
small hand-built topologies.
"""

import pytest

from repro.bgp.propagation import OriginSpec
from repro.bgp.prefix import Prefix
from repro.runtime.context import PipelineContext
from repro.runtime.delta import (
    DeltaStats,
    KIND_C2P,
    KIND_PEER,
    _observer_below,
    affected_origins,
    affected_update,
    customer_cone,
    fragments_equivalent,
    origins_touching,
    patched_result,
)
from repro.topology.as_graph import ASGraph, ASLink, ASNode, LinkType


def two_trees(peer_link: bool = False) -> ASGraph:
    """Two provider trees: 1 over {3, 4}, 3 over {6}; 2 over {5}.

    With ``peer_link`` the roots 1 and 2 peer, joining the trees.
    """
    graph = ASGraph()
    for asn in (1, 2, 3, 4, 5, 6):
        graph.add_as(ASNode(asn=asn,
                            prefixes=[Prefix.parse(f"10.{asn}.0.0/16")]))
    graph.add_c2p(3, 1)
    graph.add_c2p(4, 1)
    graph.add_c2p(6, 3)
    graph.add_c2p(5, 2)
    if peer_link:
        graph.add_p2p(1, 2)
    return graph


ALL_ASNS = [1, 2, 3, 4, 5, 6]


def propagate_all(graph, record_at=None):
    """(context, result) with every AS an origin, recording everywhere
    (or at *record_at*)."""
    context = PipelineContext.from_graph(graph)
    engine = context.engine(record_at=record_at)
    origins = [OriginSpec(asn=node.asn, prefixes=list(node.prefixes))
               for node in graph.nodes()]
    return context, engine.propagate(origins)


# ---------------------------------------------------------------------------
# affected_origins (the conservative backward cone)
# ---------------------------------------------------------------------------


def test_affected_origins_disjoint_trees_stay_unaffected():
    index = two_trees().build_index()
    affected = affected_origins(index, {5}, ALL_ASNS)
    # Tree {2, 5} is tainted; tree {1, 3, 4, 6} cannot reach the seed.
    assert affected == {2, 5}


def test_affected_origins_takes_at_most_one_peer_hop():
    graph = ASGraph()
    for asn in (1, 2, 3):
        graph.add_as(ASNode(asn=asn))
    graph.add_p2p(1, 2)
    graph.add_p2p(2, 3)
    affected = affected_origins(graph.build_index(), {3}, [1, 2, 3])
    # 2 peers with the seed; 1 would need a second (invalid) peer hop.
    assert affected == {2, 3}


def test_affected_origins_isolated_seed_taints_itself():
    index = two_trees().build_index()
    assert affected_origins(index, {99}, ALL_ASNS + [99]) == {99}
    assert affected_origins(index, set(), ALL_ASNS) == frozenset()


# ---------------------------------------------------------------------------
# cones and observer gating
# ---------------------------------------------------------------------------


def test_customer_cone():
    index = two_trees(peer_link=True).build_index()
    assert customer_cone(index, 1) == {1, 3, 4, 6}
    assert customer_cone(index, 3) == {3, 6}
    assert customer_cone(index, 5) == {5}
    assert customer_cone(index, 99) == {99}  # not in the index


def test_observer_below():
    index = two_trees(peer_link=True).build_index()
    assert _observer_below(index, 3, frozenset({6}))      # descent 3 -> 6
    assert _observer_below(index, 3, frozenset({3}))      # the AS itself
    assert not _observer_below(index, 2, frozenset({6}))  # other tree
    assert not _observer_below(index, 3, frozenset({1}))  # 1 is above 3
    assert _observer_below(index, 3, None)                # records everywhere
    assert not _observer_below(index, 99, frozenset({6}))


# ---------------------------------------------------------------------------
# origins_touching: the exact removal/taint scan
# ---------------------------------------------------------------------------


def test_origins_touching_finds_paths_crossing_an_edge():
    graph = two_trees(peer_link=True)
    _, result = propagate_all(graph)
    touching = origins_touching(result, pairs=[(3, 1)])
    # 6 climbs through 3 -> 1; every origin descends 1 -> 3 towards 6.
    assert 6 in touching and 5 in touching
    # No recorded path crosses 3-1 for... every origin does here (dense);
    # but the edge 5-2 is only crossed by routes entering/leaving tree 2.
    not_touching = set(ALL_ASNS) - origins_touching(result, pairs=[(5, 2)])
    assert not_touching == set()  # with a peer link all origins reach 5
    assert origins_touching(result) == set()


def test_origins_touching_node_visits():
    graph = two_trees()  # no peer link: trees are independent
    _, result = propagate_all(graph)
    touching = origins_touching(result, visits=[2])
    assert touching == {2, 5}


def test_removal_exactness_against_brute_force():
    """Origins outside the touching set keep bit-identical fragments
    when the edge is removed — for every edge of the graph."""
    graph = two_trees(peer_link=True)
    _, before = propagate_all(graph)
    for link in list(graph.links()):
        touching = origins_touching(before, pairs=[(link.a, link.b)])
        mutated = two_trees(peer_link=True)
        mutated.remove_link(link.a, link.b)
        _, after = propagate_all(mutated)
        before_map = before.recorded_fragments()
        after_map = after.recorded_fragments()
        for origin in ALL_ASNS:
            if origin not in touching:
                assert fragments_equivalent(before_map[origin],
                                            after_map[origin]), \
                    (link, origin)


# ---------------------------------------------------------------------------
# affected_update: addition analysis
# ---------------------------------------------------------------------------


def test_affected_update_c2p_addition_climb_side():
    graph = two_trees()
    index = graph.build_index()
    _, prior = propagate_all(graph, record_at=frozenset({1, 4}))
    # Adding 5 -> 1 (customer 5, provider 1): 5's cone climbs and
    # re-exports globally; no observer sits at/below 5, so the descent
    # side contributes nothing.
    affected = affected_update(prior, index, ALL_ASNS, frozenset({1, 4}),
                               added=[(KIND_C2P, 5, 1)])
    assert affected == {5}


def test_affected_update_c2p_addition_descent_gated_by_observer():
    graph = two_trees()
    index = graph.build_index()
    _, prior = propagate_all(graph, record_at=frozenset({5}))
    # Now an observer sits at the customer endpoint: everything the
    # provider holds can surface there -> conservative backward cone
    # of the provider (tree 1 entirely) plus the climb side.
    affected = affected_update(prior, index, ALL_ASNS, frozenset({5}),
                               added=[(KIND_C2P, 5, 1)])
    assert affected == {1, 3, 4, 5, 6}


def test_affected_update_peer_addition_cone_exchange():
    graph = two_trees()
    index = graph.build_index()
    _, prior = propagate_all(graph, record_at=frozenset({6, 5}))
    # Peering 1 with 2: 1's cone surfaces below 2 (observer 5 present),
    # 2's cone surfaces below 1 (observer 6 present) -> both cones.
    affected = affected_update(prior, index, ALL_ASNS, frozenset({6, 5}),
                               added=[(KIND_PEER, 1, 2)])
    assert affected == {1, 2, 3, 4, 5, 6}
    # Without an observer under tree 2, only 2's cone can surface.
    affected = affected_update(prior, index, ALL_ASNS, frozenset({6}),
                               added=[(KIND_PEER, 1, 2)])
    assert affected == {2, 5}


def test_affected_update_removal_uses_exact_scan():
    graph = two_trees()
    index = graph.build_index()
    _, prior = propagate_all(graph)
    affected = affected_update(prior, index, ALL_ASNS, None,
                               removed=[(5, 2)])
    assert affected == {2, 5}


# ---------------------------------------------------------------------------
# incremental CSR splice: structural identity with a fresh build
# ---------------------------------------------------------------------------


def assert_index_identical(spliced, fresh):
    """Phase arrays equal and bags semantically equal, row for row."""
    for phase_name in ("customer_edges", "peer_edges", "provider_edges"):
        mine = getattr(spliced, phase_name)
        theirs = getattr(fresh, phase_name)
        assert mine.indptr == theirs.indptr, phase_name
        assert mine.targets == theirs.targets, phase_name
        assert mine.rels == theirs.rels, phase_name
        assert mine.vias == theirs.vias, phase_name
        # Bag ids may differ across stores; the community sets must not.
        assert [spliced.bags.value(bag) for bag in mine.bags] \
            == [fresh.bags.value(bag) for bag in theirs.bags], phase_name
    assert spliced.num_edges == fresh.num_edges
    assert list(spliced.node_asns) == list(fresh.node_asns)


def test_spliced_index_matches_fresh_build_per_link():
    """Removing then re-adding every link via splice reproduces the
    from-scratch build's arrays exactly."""
    from repro.topology.as_graph import link_adjacencies

    graph = two_trees(peer_link=True)
    graph.add_link(ASLink(4, 6, LinkType.SIBLING))
    index = graph.build_index()
    for link in list(graph.links()):
        if graph.degree(link.a) == 1 or graph.degree(link.b) == 1:
            continue  # node would leave the edge set: rebuild territory
        adjacencies = link_adjacencies(link)
        without = index.spliced(adjacencies, [])
        mutated = ASGraph()
        for node in graph.nodes():
            mutated.add_as(ASNode(asn=node.asn,
                                  prefixes=list(node.prefixes)))
        for other_link in graph.links():
            if other_link is not link:
                mutated.add_link(other_link)
        assert_index_identical(without, mutated.build_index())
        back = without.spliced([], adjacencies)
        assert_index_identical(back, graph.build_index())


def test_spliced_index_rejects_unknown_edges():
    from repro.topology.as_graph import link_adjacencies

    graph = two_trees()
    index = graph.build_index()
    missing = ASGraph()
    for asn in (3, 4):
        missing.add_as(ASNode(asn=asn))
    phantom = missing.add_p2p(3, 4)
    with pytest.raises(KeyError):  # removal of an edge that is not there
        index.spliced(link_adjacencies(phantom), [])
    present = graph.get_link(3, 1)
    with pytest.raises(KeyError):  # double insertion of a present edge
        index.spliced([], link_adjacencies(present))


def test_spliced_index_retags_edge_bags_in_place():
    from repro.bgp.communities import Community
    from repro.topology.as_graph import link_adjacencies

    graph = two_trees()
    graph.add_p2p(1, 2, ixp="IX", multilateral=True)
    first = {1: frozenset({Community(65000, 1)})}
    second = {1: frozenset({Community(65000, 2)})}
    index = graph.build_index(
        rs_community_provider=lambda asn, ixp: first.get(asn, frozenset()))
    link = graph.get_link(1, 2)
    retagged = index.spliced([], [], link_adjacencies(
        link, lambda asn, ixp: second.get(asn, frozenset())))
    fresh = graph.build_index(
        rs_community_provider=lambda asn, ixp: second.get(asn, frozenset()))
    assert_index_identical(retagged, fresh)
    # The pre-splice index still carries the old bag (store append-only).
    assert_index_identical(
        index, graph.build_index(
            rs_community_provider=lambda asn, ixp: first.get(
                asn, frozenset())))


# ---------------------------------------------------------------------------
# patched_result: block reuse and stats
# ---------------------------------------------------------------------------


def test_patched_result_reuses_blocks_byte_for_byte():
    graph = two_trees(peer_link=True)
    context, prior = propagate_all(graph)
    engine = context.engine()
    specs = [OriginSpec(asn=node.asn, prefixes=list(node.prefixes))
             for node in graph.nodes()]

    patched, stats = patched_result(prior, specs, {4},
                                    engine.batch_fragments)
    assert stats == DeltaStats(total=6, recomputed=1, reused=5)
    assert stats.recomputed_fraction == pytest.approx(1 / 6)
    prior_map = prior.recorded_fragments()
    patched_map = patched.recorded_fragments()
    assert list(patched_map) == list(prior_map)
    for origin in ALL_ASNS:
        best, offered = patched_map[origin]
        if origin == 4:
            assert best is not prior_map[origin][0]
            assert fragments_equivalent((best, offered), prior_map[origin])
        else:  # literal object reuse, not a copy
            assert best is prior_map[origin][0]
            assert offered is prior_map[origin][1]


def test_patched_result_recomputes_new_origins_and_drops_gone_ones():
    graph = two_trees()
    context, prior = propagate_all(graph)
    engine = context.engine()
    specs = [OriginSpec(asn=asn, prefixes=[Prefix.parse(f"10.{asn}.0.0/16")])
             for asn in (1, 2, 3, 4, 5)]  # 6 gone
    specs.append(OriginSpec(asn=99, prefixes=[]))  # new (isolated) origin
    patched, stats = patched_result(prior, specs, set(),
                                    engine.batch_fragments)
    assert stats.recomputed == 1  # only the new origin
    assert set(patched.recorded_fragments()) == {1, 2, 3, 4, 5, 99}


def test_recorded_fragments_rejects_mixed_recording():
    graph = two_trees()
    _, result = propagate_all(graph)
    route = result.recorded_fragments()[6][0][0]
    result._record_best(6, route)  # object-path recording taints it
    with pytest.raises(ValueError):
        result.recorded_fragments()


# ---------------------------------------------------------------------------
# mutation epochs: route-cache keys can never serve stale blocks
# ---------------------------------------------------------------------------


def test_route_cache_epoch_invalidation():
    graph = two_trees()
    context = PipelineContext.from_graph(graph)
    context.bind_epoch(lambda: graph.version)
    engine = context.engine(record_at=frozenset(ALL_ASNS))
    specs = [OriginSpec(asn=node.asn, prefixes=list(node.prefixes))
             for node in graph.nodes()]

    engine.batch_fragments(specs)
    hits_before = context.route_cache.hits
    engine.batch_fragments(specs)
    assert context.route_cache.hits > hits_before  # warm, same epoch

    graph.add_c2p(6, 1)  # structural mutation bumps graph.version
    misses_before = context.route_cache.misses
    hits_before = context.route_cache.hits
    engine.batch_fragments(specs)
    assert context.route_cache.misses > misses_before
    assert context.route_cache.hits == hits_before  # nothing stale served


def test_mutation_epoch_defaults_to_constant():
    context = PipelineContext.from_graph(two_trees())
    assert context.mutation_epoch() == 0
