"""RouteCache byte-bounded LRU eviction and exact accounting."""

import pytest

from repro.bgp.policy import Relationship
from repro.bgp.propagation import OriginSpec, bidirectional_adjacencies
from repro.runtime.context import (
    _ROUTE_OBJECT_BYTES,
    PipelineContext,
    RouteCache,
    _fragments_nbytes,
)


def frag(best: int, offered: int = 0):
    """A fragment pair of *best*/*offered* plain routes: charged the
    flat per-route estimate, so sizes are predictable in tests."""
    return ([object()] * best, [object()] * offered)


UNIT = _ROUTE_OBJECT_BYTES  # bytes charged per object route


class TestUnbounded:
    def test_no_eviction_without_budget(self):
        cache = RouteCache()
        for i in range(100):
            cache[i] = frag(10)
        assert cache.entries == 100
        assert cache.evictions == 0
        assert cache.bytes == 100 * 10 * UNIT
        assert cache.stats()["max_bytes"] is None

    def test_hit_miss_counters(self):
        cache = RouteCache()
        cache["a"] = frag(1)
        assert cache.get("a") is not None
        assert cache.get("b") is None
        assert (cache.hits, cache.misses) == (1, 1)


class TestLRUEviction:
    def test_evicts_least_recently_used_first(self):
        cache = RouteCache(max_bytes=3 * UNIT)
        cache["a"] = frag(1)
        cache["b"] = frag(1)
        cache["c"] = frag(1)
        assert cache.get("a") is not None  # touch: a is now most recent
        cache["d"] = frag(1)               # over budget -> evict oldest
        assert "b" not in cache            # b was least recently used
        assert all(key in cache for key in ("a", "c", "d"))
        assert cache.evictions == 1

    def test_accounting_stays_exact_under_eviction(self):
        cache = RouteCache(max_bytes=10 * UNIT)
        sizes = [3, 5, 2, 7, 1, 4]
        for i, size in enumerate(sizes):
            cache[i] = frag(size)
        resident = sum(_fragments_nbytes(cache[key]) for key in
                       [k for k in range(len(sizes)) if k in cache])
        assert cache.bytes == resident
        assert cache.bytes <= cache.max_bytes
        assert cache.entries + cache.evictions == len(sizes)

    def test_newest_entry_survives_even_oversize(self):
        cache = RouteCache(max_bytes=UNIT)
        cache["huge"] = frag(50)
        assert "huge" in cache                 # never evict what was
        assert cache.bytes == 50 * UNIT        # just stored
        cache["small"] = frag(1)               # next insert displaces it
        assert "huge" not in cache
        assert "small" in cache
        assert cache.bytes == UNIT

    def test_replacing_a_key_subtracts_old_bytes(self):
        cache = RouteCache(max_bytes=100 * UNIT)
        cache["a"] = frag(10)
        cache["a"] = frag(2)
        assert cache.bytes == 2 * UNIT
        assert cache.entries == 1

    def test_hit_reinsertion_keeps_bytes_constant(self):
        cache = RouteCache(max_bytes=100 * UNIT)
        cache["a"] = frag(3)
        cache["b"] = frag(4)
        before = cache.bytes
        cache.get("a")
        assert cache.bytes == before
        assert cache.entries == 2

    def test_set_max_bytes_evicts_immediately(self):
        cache = RouteCache()
        for i in range(10):
            cache[i] = frag(1)
        cache.set_max_bytes(4 * UNIT)
        assert cache.entries == 4
        assert cache.bytes == 4 * UNIT
        assert cache.evictions == 6
        assert set(range(6, 10)).issubset(set(cache._entries))
        cache.set_max_bytes(None)              # unbound again
        cache[99] = frag(100)
        assert cache.evictions == 6

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            RouteCache(max_bytes=-1)
        with pytest.raises(ValueError):
            RouteCache().set_max_bytes(-5)

    def test_stats_and_repr_expose_budget(self):
        cache = RouteCache(max_bytes=2 * UNIT)
        cache["a"] = frag(1)
        cache["b"] = frag(1)
        cache["c"] = frag(1)
        stats = cache.stats()
        assert stats["evictions"] == 1
        assert stats["max_bytes"] == 2 * UNIT
        assert stats["bytes"] == 2 * UNIT
        assert "evictions" in repr(cache) and "max" in repr(cache)


class TestContextIntegration:
    def test_context_knob_bounds_route_cache(self):
        adjacencies = bidirectional_adjacencies(10, 20, Relationship.PROVIDER)
        context = PipelineContext.from_adjacencies(
            adjacencies, route_cache_max_bytes=123)
        assert context.route_cache.max_bytes == 123
        assert context.stats()["route_cache_evictions"] == 0

    def test_engine_memoisation_survives_oversize_budget(self):
        # A budget smaller than one fragment pair must not break the
        # engine's read-your-own-write memoisation within a propagate.
        from repro.bgp.prefix import Prefix
        adjacencies = bidirectional_adjacencies(10, 20, Relationship.PROVIDER)
        context = PipelineContext.from_adjacencies(
            adjacencies, route_cache_max_bytes=1)
        engine = context.engine(record_at=[10, 20])
        origin = OriginSpec(asn=10, prefixes=[Prefix.parse("10.0.0.0/24")])
        result = engine.propagate([origin])
        assert result.best_route(20, 10) is not None
        assert context.route_cache.entries <= 1
