"""Columnar fragment plane: RouteBlock vs object fragments, exactly.

The columnar plane must be invisible to consumers: RouteBlock-backed
fragments iterate into the same routes, in the same order, with the same
provenance/communities/learned_from as the eager object path, across all
three production backends — and blocks must survive pickling (the shard
worker boundary) bit-identically.  The object oracle is the frontier
engine with the columnar plane forced off, i.e. the exact pre-columnar
materialisation code path.
"""

from __future__ import annotations

import pickle
import random

import pytest

import repro.bgp.propagation as propagation_module
from repro.bgp.propagation import OriginSpec, RouteBlock
from repro.runtime.context import PipelineContext
from repro.runtime.fragments import (
    PathTable,
    fragments_available,
    walk_paths,
)
from repro.runtime.stores import PathStore

from tests.runtime.test_batched import (
    fragment_key,
    random_internet,
    random_origins,
)

requires_numpy = pytest.mark.skipif(
    not fragments_available(), reason="columnar fragments require numpy")

BLOCK_BACKENDS = ("frontier", "batched", "compiled")


def object_fragments(adjacencies, origins, monkeypatch, **kwargs):
    """Fragments from a frontier engine with the columnar plane forced
    off — the pre-columnar per-route materialisation path, used as the
    oracle.  The patch is undone before returning so the engines under
    test keep the plane on."""
    monkeypatch.setattr(propagation_module, "fragments_available",
                        lambda: False)
    try:
        engine = PipelineContext.from_adjacencies(adjacencies).engine(**kwargs)
        return engine.batch_fragments(origins)
    finally:
        monkeypatch.undo()


def object_result(adjacencies, origins, monkeypatch, **kwargs):
    """Like :func:`object_fragments` but a full eagerly recorded
    :class:`PropagationResult`."""
    monkeypatch.setattr(propagation_module, "fragments_available",
                        lambda: False)
    try:
        engine = PipelineContext.from_adjacencies(adjacencies).engine(**kwargs)
        return engine.propagate(origins)
    finally:
        monkeypatch.undo()


# -- vectorized chain walk -----------------------------------------------------


@requires_numpy
@pytest.mark.parametrize("seed", [3, 11, 20131209])
def test_walk_paths_matches_scalar_materialize(seed):
    np = pytest.importorskip("numpy")
    rng = random.Random(seed)
    store = PathStore()
    pids = []
    for _ in range(200):
        parent = rng.choice(pids) if pids and rng.random() < 0.7 else -1
        pids.append(store.cons(rng.randrange(64500, 64700), parent))
    sample = rng.sample(pids, k=50)
    heads, parents = store.columns()
    offsets, values = walk_paths(heads, parents, np.asarray(sample))
    for row, pid in enumerate(sample):
        expected = store.materialize(pid)
        assert tuple(values[offsets[row]:offsets[row + 1]]) == expected


@requires_numpy
def test_path_table_gather_handles_repeats_and_missing():
    np = pytest.importorskip("numpy")
    store = PathStore()
    a = store.cons(64500)
    b = store.cons(64501, a)
    c = store.cons(64502, b)
    heads, parents = store.columns()
    table = PathTable(heads, parents, np.asarray([a, b, c]))
    offsets, values = table.gather(np.asarray([c, -1, a, c]))
    assert offsets.tolist() == [0, 3, 3, 4, 7]
    assert values.tolist() == [64502, 64501, 64500, 64500,
                               64502, 64501, 64500]


# -- block/object differential across backends ---------------------------------


@requires_numpy
@pytest.mark.parametrize("backend", BLOCK_BACKENDS)
@pytest.mark.parametrize("seed", [5, 77, 20130507, 424242])
def test_blocks_bit_identical_to_object_fragments(seed, backend, monkeypatch):
    """RouteBlock-backed fragments iterate into exactly the routes the
    eager object path produced: content, provenance and order, for best
    fragments and Adj-RIB-In offers alike."""
    rng = random.Random(seed)
    asns, adjacencies = random_internet(rng)
    origins = random_origins(rng, asns)
    observers = rng.sample(asns, k=12)
    alt = observers[:5]

    expected_fragments = object_fragments(
        adjacencies, origins, monkeypatch,
        record_at=observers, record_alternatives_at=alt)
    columnar = PipelineContext.from_adjacencies(adjacencies).engine(
        record_at=observers, record_alternatives_at=alt, backend=backend)
    for spec, got, expected in zip(origins,
                                   columnar.batch_fragments(origins),
                                   expected_fragments):
        assert isinstance(got[0], RouteBlock), (backend, spec.asn)
        assert isinstance(got[1], RouteBlock), (backend, spec.asn)
        assert fragment_key(got[0]) == fragment_key(expected[0]), \
            (seed, backend, spec.asn, "best")
        assert fragment_key(got[1]) == fragment_key(expected[1]), \
            (seed, backend, spec.asn, "offered")


@requires_numpy
@pytest.mark.parametrize("backend", BLOCK_BACKENDS)
def test_result_api_matches_object_path(backend, monkeypatch):
    """The lazily indexed result answers observers/routes/links exactly
    like the eagerly recorded one, including dict orders."""
    rng = random.Random(1234)
    asns, adjacencies = random_internet(rng)
    origins = random_origins(rng, asns)
    observers = rng.sample(asns, k=10)

    expected = object_result(adjacencies, origins, monkeypatch,
                             record_at=observers)
    columnar = PipelineContext.from_adjacencies(adjacencies).engine(
        record_at=observers, backend=backend).propagate(origins)
    # Columnar fast path first, before any object-level access indexes
    # the result.
    assert columnar.visible_links() == expected.visible_links()
    assert columnar.observers() == expected.observers()
    for observer in observers:
        assert fragment_key(
            route for _origin, route in columnar.iter_routes_at(observer)
        ) == fragment_key(
            route for _origin, route in expected.iter_routes_at(observer))
        assert [origin for origin, _route in columnar.iter_routes_at(observer)] \
            == [origin for origin, _route in expected.iter_routes_at(observer)]


@requires_numpy
def test_iter_best_columns_matches_iter_routes():
    rng = random.Random(99)
    asns, adjacencies = random_internet(rng)
    origins = random_origins(rng, asns)
    observers = rng.sample(asns, k=8)
    result = PipelineContext.from_adjacencies(adjacencies).engine(
        record_at=observers, backend="batched").propagate(origins)
    for observer in observers:
        triples = result.iter_best_columns_at(observer)
        assert triples is not None
        columnar = [(origin, block.asn_list()[row], block.path(row),
                     block.communities_at(row), block.provenance_at(row))
                    for origin, block, row in triples]
        objects = [(origin, route.asn, route.path, route.communities,
                    route.provenance)
                   for origin, route in result.iter_routes_at(observer)]
        assert columnar == objects


# -- lazy-view contract --------------------------------------------------------


@requires_numpy
def test_lazy_row_views_are_cached_and_sliceable():
    rng = random.Random(7)
    asns, adjacencies = random_internet(rng)
    origins = random_origins(rng, asns, count=3)
    engine = PipelineContext.from_adjacencies(adjacencies).engine(
        record_at=asns[:6], backend="frontier")
    best, offered = engine.batch_fragments(origins)[0]
    assert len(best) == len(best.asn)
    if len(best):
        assert best[0] is best[0]          # row views are built once
        assert best[-1].asn == best.asn_list()[-1]
        assert best[:2] == [best[row] for row in range(min(2, len(best)))]
        assert [r.asn for r in best] == best.asn_list()
    with pytest.raises(IndexError):
        best[len(best)]
    assert isinstance(offered, RouteBlock)


@requires_numpy
def test_isolated_origin_is_a_block():
    rng = random.Random(13)
    asns, adjacencies = random_internet(rng)
    lonely = 65333  # not part of the topology
    engine = PipelineContext.from_adjacencies(adjacencies).engine(
        record_at=[lonely])
    best, offered = engine.batch_fragments(
        [OriginSpec(asn=lonely, prefixes=[])])[0]
    assert isinstance(best, RouteBlock) and isinstance(offered, RouteBlock)
    assert fragment_key(best) == [
        (lonely, (lonely,), frozenset(), 0, None)]
    assert len(offered) == 0


# -- pickling (the shard worker boundary) --------------------------------------


@requires_numpy
@pytest.mark.parametrize("backend", BLOCK_BACKENDS)
def test_block_pickle_round_trip(backend):
    """Blocks cross process boundaries as arrays; the restored block
    must yield bit-identical routes without any store attached."""
    rng = random.Random(20131209)
    asns, adjacencies = random_internet(rng)
    origins = random_origins(rng, asns)
    observers = rng.sample(asns, k=12)
    engine = PipelineContext.from_adjacencies(adjacencies).engine(
        record_at=observers, record_alternatives_at=observers[:4],
        backend=backend)
    for spec, (best, offered) in zip(origins, engine.batch_fragments(origins)):
        for block in (best, offered):
            clone = pickle.loads(pickle.dumps(block))
            assert isinstance(clone, RouteBlock)
            assert fragment_key(clone) == fragment_key(block), \
                (backend, spec.asn)
            assert clone.path_offsets.tolist() == block.path_offsets.tolist()
            assert clone.bag_values == block.bag_values


# -- route-cache accounting ----------------------------------------------------


@requires_numpy
def test_route_cache_hits_skip_recompute():
    """Repeated batch_fragments over the same origins is pure cache:
    hit counters move, miss counters and entries do not, and the very
    same block objects come back (no rebuild)."""
    rng = random.Random(31337)
    asns, adjacencies = random_internet(rng)
    origins = random_origins(rng, asns)
    context = PipelineContext.from_adjacencies(adjacencies)
    engine = context.engine(record_at=asns[:10], backend="batched")
    cache = context.route_cache

    first = engine.batch_fragments(origins)
    entries_after_first = len(cache)
    misses_after_first = cache.misses
    assert entries_after_first == len(origins)
    assert cache.bytes > 0

    second = engine.batch_fragments(origins)
    assert cache.misses == misses_after_first        # nothing recomputed
    assert cache.hits >= len(origins)
    assert len(cache) == entries_after_first
    for (best1, off1), (best2, off2) in zip(first, second):
        assert best1 is best2 and off1 is off2

    stats = context.stats()
    assert stats["route_cache_bytes"] == cache.bytes
    assert stats["route_cache_hits"] == cache.hits
    assert stats["route_cache_misses"] == cache.misses

    context.clear_propagation_cache()
    assert len(cache) == 0 and cache.bytes == 0
