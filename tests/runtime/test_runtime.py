"""Unit tests for the repro.runtime substrate."""

import pytest

from repro.bgp.communities import Community
from repro.bgp.policy import Relationship
from repro.bgp.prefix import Prefix
from repro.bgp.propagation import (
    Adjacency,
    OriginSpec,
    bidirectional_adjacencies,
)
from repro.runtime import (
    BitsetIndex,
    CommunityBagStore,
    CSRIndex,
    Interner,
    PathStore,
    PipelineContext,
)
from repro.runtime.bitset import iter_bits
from repro.runtime.csr import REL_CUSTOMER, REL_PROVIDER


class TestInterner:
    def test_dense_ids_in_first_intern_order(self):
        interner = Interner()
        assert interner.intern("a") == 0
        assert interner.intern("b") == 1
        assert interner.intern("a") == 0
        assert len(interner) == 2
        assert interner.value_of(1) == "b"
        assert interner.id_of("b") == 1

    def test_sorted_input_gives_sorted_ids(self):
        asns = [20, 5, 90, 7]
        interner = Interner(sorted(asns))
        ids = [interner.id_of(asn) for asn in sorted(asns)]
        assert ids == sorted(ids)

    def test_get_and_contains(self):
        interner = Interner(["x"])
        assert "x" in interner
        assert "y" not in interner
        assert interner.get("y") is None
        assert interner.intern_all(["x", "y"]) == [0, 1]


class TestPathStore:
    def test_cons_and_materialize_share_suffixes(self):
        store = PathStore()
        origin = store.cons(10)
        via_20 = store.cons(20, origin)
        via_30 = store.cons(30, via_20)
        sibling = store.cons(31, via_20)
        assert store.materialize(via_30) == (30, 20, 10)
        assert store.materialize(sibling) == (31, 20, 10)
        assert store.materialize(origin) == (10,)
        # The shared suffix is the same tuple object (memoised).
        assert store.materialize(via_30)[1:] == store.materialize(via_20)

    def test_clear(self):
        store = PathStore()
        store.cons(1)
        store.clear()
        assert len(store) == 0


class TestCommunityBagStore:
    def test_empty_bag_is_id_zero(self):
        store = CommunityBagStore()
        assert store.intern(frozenset()) == CommunityBagStore.EMPTY
        assert store.value(0) == frozenset()

    def test_union_memoised_and_shared(self):
        store = CommunityBagStore()
        a = store.intern(frozenset({Community(1, 1)}))
        b = store.intern(frozenset({Community(2, 2)}))
        merged = store.union(a, b)
        assert store.value(merged) == {Community(1, 1), Community(2, 2)}
        assert store.union(a, b) == merged
        assert store.union(b, a) == merged
        assert store.union(a, 0) == a
        assert store.union(0, b) == b
        assert store.union(a, a) == a


class TestCSRIndex:
    def test_node_ids_sorted_by_asn(self):
        adjacencies = bidirectional_adjacencies(30, 10, Relationship.PROVIDER)
        index = CSRIndex.from_adjacencies(adjacencies)
        assert list(index.node_asns) == [10, 30]
        assert index.id_of[10] == 0 and index.id_of[30] == 1

    def test_phase_partitioning(self):
        adjacencies = bidirectional_adjacencies(10, 20, Relationship.PROVIDER)
        adjacencies.append(Adjacency(10, 30, Relationship.PEER))
        index = CSRIndex.from_adjacencies(adjacencies)
        assert index.customer_edges.num_edges == 1
        assert index.customer_edges.rels == [REL_CUSTOMER]
        assert index.provider_edges.num_edges == 1
        assert index.provider_edges.rels == [REL_PROVIDER]
        assert index.peer_edges.num_edges == 1
        assert index.num_edges == 3
        assert index.summary()["nodes"] == 3

    def test_edge_communities_interned(self):
        tag = frozenset({Community(6695, 99)})
        index = CSRIndex.from_adjacencies([
            Adjacency(10, 20, Relationship.RS_PEER, communities=tag)])
        bag_id = index.peer_edges.bags[0]
        assert bag_id != 0
        assert index.bags.value(bag_id) == tag


class TestBitsetIndex:
    def test_masks_roundtrip(self):
        index = BitsetIndex([30, 10, 20])
        assert index.universe == (10, 20, 30)
        mask = index.mask_of([20, 30, 999])
        assert index.values_of(mask) == [20, 30]
        assert index.full_mask == 0b111
        assert list(iter_bits(0b101)) == [0, 2]


class TestPipelineContext:
    def _context(self):
        adjacencies = bidirectional_adjacencies(10, 20, Relationship.PROVIDER)
        return PipelineContext.from_adjacencies(adjacencies)

    def test_engine_shares_index_and_memoizes_origins(self):
        context = self._context()
        engine = context.engine(record_at=[10, 20])
        origin = OriginSpec(asn=10, prefixes=[Prefix.parse("10.0.0.0/24")])
        first = engine.propagate([origin])
        assert context.stats()["memoized_origins"] == 1
        second = engine.propagate([origin])
        # The memoised fragment is reused: identical route objects.
        assert second.best_route(20, 10) is first.best_route(20, 10)
        context.clear_propagation_cache()
        assert context.stats()["memoized_origins"] == 0

    def test_record_everything_engine_is_not_memoized(self):
        # record_at=None materialises a route per AS; memoising that on
        # the shared context would pin O(origins x nodes) objects.
        context = self._context()
        engine = context.engine()
        origin = OriginSpec(asn=10, prefixes=[Prefix.parse("10.0.0.0/24")])
        result = engine.propagate([origin])
        assert result.best_route(20, 10) is not None
        assert context.stats()["memoized_origins"] == 0

    def test_member_index_cached_until_population_changes(self):
        context = self._context()
        first = context.member_index("DE-CIX", [1, 2, 3])
        assert context.member_index("DE-CIX", [3, 2, 1]) is first
        changed = context.member_index("DE-CIX", [1, 2])
        assert changed is not first

    def test_from_graph_uses_graph_cache(self):
        from repro.topology.as_graph import ASGraph, ASNode
        graph = ASGraph()
        graph.add_as(ASNode(asn=10))
        graph.add_as(ASNode(asn=20))
        graph.add_c2p(10, 20)
        index_a = graph.build_index()
        index_b = graph.build_index()
        assert index_a is index_b
        graph.add_as(ASNode(asn=30))
        assert graph.build_index() is not index_a
        context = PipelineContext.from_graph(graph)
        assert context.index.num_nodes == 2  # AS30 has no links yet
