"""Differential and unit suite for the fused compiled backend.

The compiled backend must reproduce the frontier engine *exactly* —
fragment content and order, Adj-RIB-In offers, touched order — just
like the batched backend it subclasses, while running its rounds
through narrow planes and the fused resolve.  This module adds the
compiled-specific surfaces on top of the shared three-backend suite in
``test_batched.py``: the int32/int64 promotion rule, the path-id
overflow guard, the numba probe, and the plan-shipping snapshot path.
"""

from __future__ import annotations

import random

import pytest

from repro.bgp.policy import Relationship
from repro.bgp.propagation import Adjacency, OriginSpec, PropagationEngine
from repro.runtime.batched import (
    INT32_MAX,
    BatchedPathStore,
    BatchedPropagator,
    PathIdOverflow,
    fit_dtype,
    numpy_available,
)
from repro.runtime.compiled import (
    HAS_NUMBA,
    NUMBA_DISABLE_ENV,
    CompiledPropagator,
    _probe_numba,
    _py_winner_touch,
    compiled_available,
    compiled_batch_size,
)
from repro.runtime.context import PipelineContext
from repro.runtime.snapshot import restore_context, snapshot_context

from tests.runtime.test_batched import (
    fragment_key,
    random_internet,
    random_origins,
)

requires_numpy = pytest.mark.skipif(
    not numpy_available(), reason="compiled backend requires numpy")


# -- exact frontier equivalence ------------------------------------------------


@requires_numpy
@pytest.mark.parametrize("seed", [1, 7, 20130507, 424242, 999983])
def test_compiled_fragments_bit_identical_to_frontier(seed):
    """Best AND offered fragments match the frontier engine exactly,
    including discovery/offer order, on random policy topologies."""
    rng = random.Random(seed)
    asns, adjacencies = random_internet(rng)
    origins = random_origins(rng, asns)
    observers = rng.sample(asns, k=12)
    alt = observers[:5]

    frontier = PipelineContext.from_adjacencies(adjacencies).engine(
        record_at=observers, record_alternatives_at=alt)
    compiled = PipelineContext.from_adjacencies(adjacencies).engine(
        record_at=observers, record_alternatives_at=alt, backend="compiled")
    for spec, got_f, got_c in zip(origins,
                                  frontier.batch_fragments(origins),
                                  compiled.batch_fragments(origins)):
        assert fragment_key(got_f[0]) == fragment_key(got_c[0]), \
            (seed, spec.asn, "best")
        assert fragment_key(got_f[1]) == fragment_key(got_c[1]), \
            (seed, spec.asn, "offered")


@requires_numpy
@pytest.mark.parametrize("seed", [3, 31337])
def test_compiled_record_everything_matches_frontier(seed):
    rng = random.Random(seed)
    asns, adjacencies = random_internet(rng, num_ases=40)
    origins = random_origins(rng, asns, count=15)
    frontier = PipelineContext.from_adjacencies(adjacencies).engine()
    compiled = PipelineContext.from_adjacencies(adjacencies).engine(
        backend="compiled")
    for got_f, got_c in zip(frontier.batch_fragments(origins),
                            compiled.batch_fragments(origins)):
        assert fragment_key(got_f[0]) == fragment_key(got_c[0])


@requires_numpy
def test_compiled_propagation_result_matches_frontier():
    rng = random.Random(99)
    asns, adjacencies = random_internet(rng)
    origins = random_origins(rng, asns)
    fast = PropagationEngine(adjacencies).propagate(origins)
    compiled = PropagationEngine(adjacencies, backend="compiled").propagate(
        origins)
    assert fast.visible_links() == compiled.visible_links()
    for origin in origins:
        for asn in asns:
            route_f = fast.best_route(asn, origin.asn)
            route_c = compiled.best_route(asn, origin.asn)
            assert (route_f is None) == (route_c is None)
            if route_f is not None:
                assert fragment_key([route_f]) == fragment_key([route_c])


# -- int32/int64 promotion rule ------------------------------------------------


@requires_numpy
def test_fit_dtype_boundaries():
    import numpy as np
    assert fit_dtype(0) is np.int32
    assert fit_dtype(INT32_MAX) is np.int32
    assert fit_dtype(INT32_MAX + 1) is np.int64
    # Negative sentinels must not be narrowed on the strength of their
    # magnitude alone; the rule demands a non-negative bound.
    assert fit_dtype(-1) is np.int64


@requires_numpy
def test_small_plan_uses_int32_planes():
    import numpy as np
    rng = random.Random(8)
    _asns, adjacencies = random_internet(rng)
    plan = PipelineContext.from_adjacencies(adjacencies).plan
    assert plan.key_plane_dtype() is np.int32
    assert plan.summary()["key_plane_bits"] == 32


def _chain_adjacencies(num_ases, extra_peers=0, rng=None):
    """A provider chain (maximal path lengths, so the packed key range
    scales with the node count) plus optional random peer links."""
    asns = [64500 + i for i in range(num_ases)]
    adjacencies = []
    for lower, upper in zip(asns, asns[1:]):
        adjacencies.extend([
            Adjacency(lower, upper, Relationship.PROVIDER),
            Adjacency(upper, lower, Relationship.CUSTOMER),
        ])
    for _ in range(extra_peers):
        a, b = rng.sample(asns, 2)
        adjacencies.append(Adjacency(a, b, Relationship.PEER))
        adjacencies.append(Adjacency(b, a, Relationship.PEER))
    return asns, adjacencies


@requires_numpy
@pytest.mark.parametrize("seed", [21, 1203])
def test_int64_key_fallback_stays_bit_identical(seed):
    """Topologies whose packed key range exceeds int32 (node counts
    beyond ~2900) promote the planes to int64 and remain bit-identical
    to the frontier engine."""
    import numpy as np
    rng = random.Random(seed)
    asns, adjacencies = _chain_adjacencies(3000, extra_peers=40, rng=rng)
    context = PipelineContext.from_adjacencies(adjacencies)
    assert context.plan.key_plane_dtype() is np.int64

    origins = random_origins(rng, asns, count=3)
    observers = rng.sample(asns, k=25)
    frontier = PipelineContext.from_adjacencies(adjacencies).engine(
        record_at=observers)
    compiled = context.engine(record_at=observers, backend="compiled")
    for got_f, got_c in zip(frontier.batch_fragments(origins),
                            compiled.batch_fragments(origins)):
        assert fragment_key(got_f[0]) == fragment_key(got_c[0])


@requires_numpy
def test_huge_asns_promote_via_arrays():
    """4-byte ASNs above 2**31 force the via arrays (which hold raw
    ASNs) to int64 while propagation stays exact."""
    import numpy as np
    base = 2**31 + 100
    asns = [base + i for i in range(6)]
    adjacencies = []
    for lower, upper in zip(asns, asns[1:]):
        adjacencies.extend([
            Adjacency(lower, upper, Relationship.PROVIDER),
            Adjacency(upper, lower, Relationship.CUSTOMER),
        ])
    adjacencies.append(Adjacency(
        asns[0], asns[5], Relationship.RS_PEER,
        via_rs_asn=base + 50, rs_transparent=False))
    adjacencies.append(Adjacency(
        asns[5], asns[0], Relationship.RS_PEER,
        via_rs_asn=base + 50, rs_transparent=False))
    context = PipelineContext.from_adjacencies(adjacencies)
    assert context.plan.peer.via.dtype == np.int64

    from repro.bgp.prefix import Prefix
    origins = [OriginSpec(asn=asns[0],
                          prefixes=[Prefix.from_octets(10, 0, 0, 0, 24)])]
    frontier = PipelineContext.from_adjacencies(adjacencies).engine()
    compiled = context.engine(backend="compiled")
    for got_f, got_c in zip(frontier.batch_fragments(origins),
                            compiled.batch_fragments(origins)):
        assert fragment_key(got_f[0]) == fragment_key(got_c[0])


# -- path-id overflow guard ----------------------------------------------------


@requires_numpy
def test_path_store_id_limit_raises_instead_of_wrapping():
    import numpy as np
    store = BatchedPathStore(capacity=4, id_limit=3)
    store.alloc(np.array([1, 2]), np.array([-1, -1]))
    with pytest.raises(PathIdOverflow, match="id limit"):
        store.alloc(np.array([3, 4]), np.array([-1, -1]))
    # The failed alloc must not have committed any cells.
    assert len(store) == 2


@requires_numpy
def test_compiled_retries_batch_in_int64_on_overflow():
    """A path-id overflow inside a narrow-plane batch transparently
    re-runs the batch with int64 planes, bit-identically."""
    import numpy as np
    rng = random.Random(17)
    asns, adjacencies = random_internet(rng)
    origins = random_origins(rng, asns, count=6)
    observers = rng.sample(asns, k=10)

    class TightCompiledPropagator(CompiledPropagator):
        def _make_paths(self, num_origins):
            paths = super()._make_paths(num_origins)
            if self._dtype is np.int32:
                paths.id_limit = 8  # force the overflow path
            return paths

    context = PipelineContext.from_adjacencies(adjacencies)
    propagator = TightCompiledPropagator(context.plan, context.bags)
    nodes = [context.index.id_of[o.asn] for o in origins]
    batch = propagator.run_batch(nodes, [0] * len(nodes))
    assert propagator._dtype is np.int64  # promotion is sticky
    reference = BatchedPropagator(context.plan, context.bags).run_batch(
        nodes, [0] * len(nodes))
    assert np.array_equal(batch.cls, reference.cls)
    assert np.array_equal(batch.length, reference.length)
    assert np.array_equal(batch.frm, reference.frm)
    for row in range(len(nodes)):
        assert list(batch.touched[row]) == list(reference.touched[row])


# -- fused winner/touch kernel -------------------------------------------------


@requires_numpy
def test_winner_touch_kernel_matches_sequential_semantics():
    """The fused scatter marks exactly the frontier's sequential
    acceptance: per target, the smallest key wins with earliest
    candidate breaking ties, and the first candidate touching an
    untouched target is marked."""
    import numpy as np
    rng = random.Random(23)
    num_targets = 17
    n = 120
    flat = np.array([rng.randrange(num_targets) for _ in range(n)],
                    dtype=np.int64)
    key = np.array([rng.randrange(50) for _ in range(n)], dtype=np.int64)
    newly = np.array([rng.random() < 0.4 for _ in range(n)])
    work_key = np.zeros(num_targets, dtype=np.int64)
    work_touch = np.zeros(num_targets, dtype=np.int64)
    winner, first = _py_winner_touch(flat, key, newly, work_key, work_touch)

    best = {}
    seen = set()
    expect_winner = [False] * n
    expect_first = [False] * n
    for i in range(n):
        target = int(flat[i])
        if target not in best or key[i] < key[best[target]]:
            best[target] = i
        if newly[i] and target not in seen:
            seen.add(target)
            expect_first[i] = True
    for i in best.values():
        expect_winner[i] = True
    assert winner.view(bool).tolist() == expect_winner
    assert first.tolist() == [1 if f else 0 for f in expect_first]


# -- capability probe and degradation -----------------------------------------


def test_probe_respects_disable_env(monkeypatch):
    monkeypatch.setenv(NUMBA_DISABLE_ENV, "1")
    assert _probe_numba() is None


def test_has_numba_is_a_bool():
    assert isinstance(HAS_NUMBA, bool)


@requires_numpy
def test_compiled_available_tracks_numpy():
    assert compiled_available() is True


@requires_numpy
def test_compiled_backend_selectable_without_numba(monkeypatch):
    """Selecting the compiled backend never raises regardless of numba:
    force the pure-numpy fused path and check it still propagates."""
    monkeypatch.setattr(CompiledPropagator, "_use_jit", False)
    rng = random.Random(31)
    asns, adjacencies = random_internet(rng)
    origins = random_origins(rng, asns, count=4)
    frontier = PipelineContext.from_adjacencies(adjacencies).engine()
    compiled = PipelineContext.from_adjacencies(adjacencies).engine(
        backend="compiled")
    for got_f, got_c in zip(frontier.batch_fragments(origins),
                            compiled.batch_fragments(origins)):
        assert fragment_key(got_f[0]) == fragment_key(got_c[0])


# -- batch sizing --------------------------------------------------------------


@requires_numpy
def test_compiled_batch_size_positive_and_budgeted():
    rng = random.Random(41)
    _asns, adjacencies = random_internet(rng)
    plan = PipelineContext.from_adjacencies(adjacencies).plan
    assert compiled_batch_size(plan) >= 1
    # A starved budget still yields a runnable batch size, and a
    # generous one is capped at the cache-friendly default width.
    assert compiled_batch_size(plan, budget_bytes=1) == 1
    assert compiled_batch_size(plan, budget_bytes=1 << 40) == \
        compiled_batch_size(plan)


# -- plan shipping through snapshots ------------------------------------------


@requires_numpy
def test_snapshot_ships_plan_when_asked():
    rng = random.Random(43)
    _asns, adjacencies = random_internet(rng)
    context = PipelineContext.from_adjacencies(adjacencies,
                                               backend="compiled")
    snapshot = snapshot_context(context, include_plan=True)
    assert snapshot.plan is not None
    restored = restore_context(snapshot)
    # The restored context replays the shipped schedule, no recompile.
    assert restored._plan is snapshot.plan
    assert restored.backend == "compiled"


@requires_numpy
def test_snapshot_without_plan_stays_lazy():
    rng = random.Random(47)
    _asns, adjacencies = random_internet(rng)
    context = PipelineContext.from_adjacencies(adjacencies)
    snapshot = snapshot_context(context)
    assert snapshot.plan is None
    restored = restore_context(snapshot)
    assert restored._plan is None
