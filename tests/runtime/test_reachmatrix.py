"""The reachability plane: kernels, derived views, context caching.

The matrix is trusted the same way the propagation backends are: its
link kernel is differentially tested against the integer-bitmask
reference, and every derived view (densities, openness, exclusions,
link provenance) is checked against the object-level computation it
replaces on a real end-to-end scenario.
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.analysis.density import density_from_matrix, density_per_ixp
from repro.analysis.hybrid import HybridRelationshipAnalysis
from repro.analysis.policies import PolicyAnalysis
from repro.analysis.repellers import RepellerAnalysis
from repro.analysis.estimation import estimates_from_matrix, measured_densities
from repro.core.reachability import infer_links
from repro.runtime.bitset import BitsetIndex, reciprocal_pairs
from repro.runtime.batched import numpy_available
from repro.runtime.reachmatrix import (
    ReachabilityMatrix,
    allow_mask_for,
    reciprocal_links,
)


# -- kernel --------------------------------------------------------------------


@pytest.mark.parametrize("seed", [1, 7, 99, 20130507])
@pytest.mark.parametrize("require", [True, False])
def test_reciprocal_links_matches_bitmask_reference(seed, require):
    """The numpy M & M.T kernel and the integer-bitmask reference emit
    the identical sorted pair tuple on random ALLOW rows."""
    rng = random.Random(seed)
    size = rng.randint(1, 80)
    universe = tuple(sorted(rng.sample(range(64500, 64500 + 500), size)))
    rows = {}
    for bit in range(size):
        if rng.random() < 0.8:
            mask = rng.getrandbits(size) & ~(1 << bit)
            rows[bit] = mask
    expected = tuple(sorted(reciprocal_pairs(dict(rows), universe, require)))
    assert reciprocal_links(rows, universe, require) == expected


def test_reciprocal_links_empty_universe():
    assert reciprocal_links({}, (), True) == ()


@pytest.mark.parametrize("require", [True, False])
def test_plane_links_match_infer_links(small_scenario, inference_result,
                                       require):
    """Per-IXP plane links equal the object-level infer_links output."""
    matrix = small_scenario.reachability_matrix(inference_result)
    for name, inference in inference_result.per_ixp.items():
        plane = matrix.planes[name]
        expected = tuple(sorted(infer_links(
            inference.reachabilities, inference.members,
            index=BitsetIndex(inference.members),
            require_reciprocity=require)))
        assert plane.links(require) == expected, name


def test_allow_mask_matches_member_reachability(inference_result):
    for inference in inference_result.per_ixp.values():
        index = BitsetIndex(inference.members)
        for asn, reach in inference.reachabilities.items():
            assert allow_mask_for(reach.mode, reach.listed, index,
                                  member_asn=asn) == \
                reach.allowed_mask(index), (inference.ixp_name, asn)


# -- from_result and derived views ---------------------------------------------


@pytest.fixture(scope="module")
def matrix(small_scenario, inference_result):
    return small_scenario.reachability_matrix(inference_result)


def test_matrix_mirrors_result_links(matrix, inference_result):
    assert matrix.all_links() == inference_result.all_links()
    assert matrix.links_by_ixp() == inference_result.links_by_ixp()
    assert matrix.multi_ixp_links() == inference_result.multi_ixp_links()
    assert matrix.link_ixps() == inference_result.link_ixps()
    assert matrix.peer_counts() == inference_result.peer_counts()
    assert matrix.ixp_names() == inference_result.ixp_names()


def test_matrix_provenance_planes(matrix, inference_result):
    for name, inference in inference_result.per_ixp.items():
        plane = matrix.planes[name]
        assert plane.passive_members == frozenset(inference.passive_members)
        assert plane.active_members == frozenset(inference.active_members)
        assert plane.active_queries == inference.active_queries
        assert plane.covered_asns() == inference.covered_members()
        universe = plane.index.universe
        for bit, sources in plane.sources.items():
            assert sources == inference.reachabilities[universe[bit]].sources


def test_matrix_density_matches_object_path(small_scenario, matrix,
                                            inference_result):
    members_by_ixp = {
        spec.name: small_scenario.graph.rs_members_of_ixp(spec.name)
        for spec in small_scenario.internet.ixp_specs}
    object_report = density_per_ixp(inference_result.links_by_ixp(),
                                    members_by_ixp,
                                    only_members_with_links=True)
    matrix_report = density_from_matrix(matrix, members_by_ixp,
                                        only_members_with_links=True)
    assert matrix_report.per_member == object_report.per_member
    assert matrix_report.mean_densities() == object_report.mean_densities()


def test_matrix_openness_matches_object_path(small_scenario, matrix,
                                             inference_result):
    analysis = PolicyAnalysis(small_scenario.graph, small_scenario.peeringdb)
    members = {name: small_scenario.graph.rs_members_of_ixp(name)
               for name in inference_result.per_ixp}
    reachabilities = {name: inf.reachabilities
                      for name, inf in inference_result.per_ixp.items()}
    object_openness = analysis.export_openness_by_policy(
        reachabilities, members)
    matrix_openness = analysis.export_openness_from_matrix(matrix, members)
    assert set(object_openness) == set(matrix_openness)
    for policy in object_openness:
        # Per-policy value multisets are equal (iteration order within a
        # policy may differ between the two walks).
        assert sorted(object_openness[policy]) == \
            sorted(matrix_openness[policy]), policy


def test_matrix_repellers_match_object_path(small_scenario, matrix,
                                            inference_result):
    analysis = RepellerAnalysis()
    members = {name: small_scenario.graph.rs_members_of_ixp(name)
               for name in inference_result.per_ixp}
    reachabilities = {name: inf.reachabilities
                      for name, inf in inference_result.per_ixp.items()}
    object_report = analysis.analyse(reachabilities, members)
    matrix_report = analysis.analyse_matrix(matrix, members)
    assert matrix_report.blocking_frequency == object_report.blocking_frequency
    assert matrix_report.blockers == object_report.blockers
    assert matrix_report.total_exclusions == object_report.total_exclusions


def test_matrix_hybrid_matches_object_path(small_scenario, matrix,
                                           inference_result):
    graph = small_scenario.graph
    analysis = HybridRelationshipAnalysis(graph.relationship)
    link_ixps = {}
    for name, links in inference_result.links_by_ixp().items():
        for link in links:
            link_ixps.setdefault(link, []).append(name)
    object_report = analysis.analyse(inference_result.all_links(), link_ixps)
    matrix_report = analysis.analyse_matrix(matrix)
    assert [c.link for c in matrix_report.candidates] == \
        [c.link for c in object_report.candidates]
    assert [c.ixps for c in matrix_report.candidates] == \
        [c.ixps for c in object_report.candidates]


def test_matrix_estimation_views(matrix):
    measured = measured_densities(matrix)
    assert set(measured) == set(matrix.planes)
    for row in measured.values():
        assert 0.0 <= row["link_density"] <= 1.0
        assert 0.0 <= row["mean_member_density"] <= 1.0
    estimates = estimates_from_matrix(matrix)
    assert [e.name for e in estimates] == sorted(matrix.planes)
    for estimate in estimates:
        assert estimate.member_asns == set(
            matrix.planes[estimate.name].index.universe)


def test_plane_exclusions_match_policies(matrix):
    for plane in matrix.planes.values():
        universe_set = set(plane.index.universe)
        expected = []
        for bit in sorted(plane.policies):
            mode, listed = plane.policies[bit]
            if mode != "all-except":
                continue
            blocker = plane.index.universe[bit]
            expected.extend((blocker, blocked)
                            for blocked in sorted(set(listed) & universe_set))
        assert plane.exclusions() == expected


def test_matrix_views_are_memoised(matrix):
    assert matrix.all_links() is matrix.all_links()
    assert matrix.multi_ixp_links() is matrix.multi_ixp_links()
    assert matrix.link_ixps() is matrix.link_ixps()
    assert matrix.peer_counts() is matrix.peer_counts()


def test_matrix_pickles(matrix):
    clone = pickle.loads(pickle.dumps(matrix))
    assert clone.all_links() == matrix.all_links()
    assert clone.links_by_ixp() == matrix.links_by_ixp()
    assert set(clone.planes) == set(matrix.planes)


def test_matrix_summary(matrix, inference_result):
    summary = matrix.summary()
    assert summary["ixps"] == len(inference_result.per_ixp)
    assert summary["links"] == len(inference_result.all_links())


# -- context caching -----------------------------------------------------------


def test_context_caches_matrix_per_result(small_scenario, inference_result):
    context = small_scenario.context
    assert context is not None
    first = context.reachability_matrix(inference_result)
    assert context.reachability_matrix(inference_result) is first
    stats = context.stats()
    assert stats["reachability_matrices"] >= 1


@pytest.mark.skipif(not numpy_available(), reason="numpy-only check")
def test_numpy_available_marker():
    """The CI environment provides numpy, so the M & M.T fast path (not
    just the bitmask fallback) is what the suite exercises."""
    import numpy  # noqa: F401
