"""Query daemon: dispatch semantics, HTTP front, warm-up, load client."""

import json
import urllib.error
import urllib.request

import pytest

np = pytest.importorskip("numpy")

from repro.service.artifact import load_matrix
from repro.service.daemon import (
    ENDPOINTS,
    QueryService,
    ServerThread,
    warm_service,
)
from repro.service.loadgen import HttpClient, percentile, run_load


@pytest.fixture(scope="module")
def warm(tmp_path_factory):
    root = tmp_path_factory.mktemp("artifacts")
    service, directories = warm_service(["europe2013"], size="tiny",
                                        artifact_root=root, verify=True)
    return service, directories


class TestDispatch:
    def test_health_and_scenarios(self, warm):
        service, _ = warm
        status, payload = service.dispatch("/health")
        assert status == 200 and payload["scenarios"] == ["europe2013"]
        status, payload = service.dispatch("/scenarios")
        assert payload["scenarios"]["europe2013"]["has_table2"] is True

    def test_has_link_matches_artifact(self, warm):
        service, _ = warm
        handle = service.handles["europe2013"]
        a, b = (int(x) for x in handle.all_links[0])
        status, payload = service.dispatch(
            f"/q/europe2013/has_link?a={a}&b={b}")
        assert (status, payload["has_link"]) == (200, True)
        status, payload = service.dispatch(
            f"/q/europe2013/has_link?a={b}&b={a}")
        assert payload["has_link"] is True  # symmetric
        status, payload = service.dispatch(
            "/q/europe2013/has_link?a=1&b=2")
        assert payload["has_link"] is False

    def test_links_of_and_peer_counts_agree(self, warm):
        service, _ = warm
        handle = service.handles["europe2013"]
        asn = int(handle.peer_asns[0])
        status, payload = service.dispatch(
            f"/q/europe2013/links_of?asn={asn}")
        assert status == 200
        assert payload["peers"] == handle.links_of(asn)
        status, counts = service.dispatch("/q/europe2013/peer_counts")
        assert counts["counts"][str(asn)] == payload["count"]
        assert sum(counts["counts"].values()) == 2 * handle.num_links

    def test_table2_and_densities(self, warm):
        service, _ = warm
        handle = service.handles["europe2013"]
        status, payload = service.dispatch("/q/europe2013/table2")
        assert (status, payload["rows"]) == (200, handle.table2)
        status, payload = service.dispatch("/q/europe2013/member_densities")
        assert status == 200
        direct = handle.member_densities()
        assert {ixp: {int(a): v for a, v in per.items()}
                for ixp, per in payload["densities"].items()} == direct

    def test_error_paths(self, warm):
        service, _ = warm
        assert service.dispatch("/q/nope/table2")[0] == 404
        assert service.dispatch("/q/europe2013/nope")[0] == 404
        assert service.dispatch("/bogus")[0] == 404
        status, payload = service.dispatch("/q/europe2013/has_link?a=1")
        assert (status, "missing" in payload["error"]) == (400, True)
        status, payload = service.dispatch("/q/europe2013/has_link?a=x&b=1")
        assert status == 400

    def test_stats_counts_requests(self, warm):
        service, _ = warm
        before = service.counters.get("summary", 0)
        service.dispatch("/q/europe2013/summary")
        status, payload = service.dispatch("/stats")
        assert payload["counters"]["summary"] == before + 1
        assert payload["counters"]["bad_request"] >= 1

    def test_workers_share_artifacts_by_directory(self, warm):
        # What each forked worker does: re-load the exported artifact
        # directories (mmap) without touching the pipeline.
        _, directories = warm
        worker = QueryService.from_artifacts(directories)
        assert worker.scenario_names() == ["europe2013"]
        status, payload = worker.dispatch("/q/europe2013/summary")
        assert (status, payload["scenario"]) == (200, "europe2013")


class TestHttpFront:
    def test_endpoints_over_real_socket(self, warm):
        service, _ = warm
        handle = service.handles["europe2013"]
        a, b = (int(x) for x in handle.all_links[0])
        with ServerThread(service) as server:
            url = f"http://127.0.0.1:{server.port}"
            with urllib.request.urlopen(f"{url}/health", timeout=10) as resp:
                assert resp.status == 200
                assert json.load(resp)["scenarios"] == ["europe2013"]
            # keep-alive client: several requests on one connection
            with HttpClient("127.0.0.1", server.port) as client:
                status, payload = client.request(
                    f"/q/europe2013/has_link?a={a}&b={b}")
                assert (status, payload["has_link"]) == (200, True)
                status, payload = client.request("/q/europe2013/table2")
                assert payload["rows"] == handle.table2
                status, payload = client.request("/q/europe2013/bogus")
                assert status == 404
            with pytest.raises(urllib.error.HTTPError) as info:
                urllib.request.urlopen(
                    f"{url}/q/europe2013/has_link?a=x&b=1", timeout=10)
            assert info.value.code == 400

    def test_load_generator_reports_latencies(self, warm):
        service, _ = warm
        with ServerThread(service) as server:
            report = run_load("127.0.0.1", server.port, "summary",
                              ["/q/europe2013/summary"], repeat=25)
        assert report.requests == 25
        assert report.errors == 0
        assert 0 < report.p50_us <= report.p99_us
        assert report.qps > 0
        row = report.row()
        assert set(row) == {"endpoint", "requests", "errors",
                            "p50_us", "p99_us", "qps"}


class TestWarmService:
    def test_artifacts_land_under_root_and_reload(self, warm, tmp_path):
        _, directories = warm
        (directory,) = directories
        assert directory.name == "europe2013-tiny"
        handle = load_matrix(directory)
        assert handle.scenario == "europe2013"

    def test_verify_catches_doctored_artifacts(self, tmp_path):
        # Flip one packed word on disk; warm-up with verify=True must
        # refuse to serve the doctored artifact.
        service, (directory,) = warm_service(
            ["europe2013"], size="tiny",
            artifact_root=tmp_path / "a", verify=False)
        allow = np.load(directory / "plane_00_allow.npy")
        allow[0, 0] ^= 1
        np.save(directory / "plane_00_allow.npy", allow)
        from repro.pipeline import ScenarioRun
        from repro.scenarios.spec import get_scenario
        from repro.service.artifact import verify_identity
        run = ScenarioRun(get_scenario("europe2013").config("tiny"),
                          scenario="europe2013")
        problems = verify_identity(run.reachability(),
                                   load_matrix(directory),
                                   table2=run.table2())
        assert problems


class TestPercentile:
    def test_nearest_rank(self):
        values = [5.0, 1.0, 3.0, 2.0, 4.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 0.5) == 3.0
        assert percentile(values, 1.0) == 5.0
        assert percentile([7.0], 0.99) == 7.0

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)

    def test_endpoint_list_is_stable(self):
        assert ENDPOINTS == ("has_link", "links_of", "peer_counts",
                             "member_densities", "table2", "summary")
