"""On-disk reachability artifact: round trips, bit-identity, tampering.

The schema's contract is *bit-identity*: an artifact written by
:func:`save_matrix` and loaded back through ``np.load(mmap_mode="r")``
must answer every matrix-level question — allow planes, provenance
masks, counts, link sets, Table 2 — exactly like the in-memory build it
came from, on every registered scenario.
"""

import json

import pytest

np = pytest.importorskip("numpy")

from repro.pipeline import ArtifactCache, ScenarioRun
from repro.runtime.reachmatrix import (
    PackedRows,
    pack_mask,
    pack_rows,
    packed_to_bool_matrix,
    packed_words,
    unpack_mask,
)
from repro.scenarios import scenario_names
from repro.scenarios.spec import get_scenario
from repro.service.artifact import (
    FORMAT_VERSION,
    ArtifactFormatError,
    load_matrix,
    save_matrix,
    verify_identity,
)

#: One shared cache: upstream stages (topology .. connectivity) are
#: reused across the per-scenario round-trip tests.
_CACHE = ArtifactCache()


def build(name: str) -> ScenarioRun:
    spec = get_scenario(name)
    return ScenarioRun(spec.config("tiny"), scenario=name, cache=_CACHE)


class TestPackedMasks:
    def test_mask_round_trip_random(self):
        rng = np.random.default_rng(7)
        for size in (1, 63, 64, 65, 200):
            for _ in range(20):
                mask = int.from_bytes(
                    rng.integers(0, 256, (size + 7) // 8,
                                 dtype=np.uint8).tobytes(),
                    "little") & ((1 << size) - 1)
                row = pack_mask(mask, size)
                assert row.shape == (packed_words(size),)
                assert unpack_mask(row) == mask

    def test_rows_to_matrix_round_trip(self):
        size = 130
        rows = {3: (1 << 5) | (1 << 127), 7: (1 << 3)}
        packed = pack_rows(rows, size)
        dense = packed_to_bool_matrix(packed, size)
        assert dense.shape == (size, size)
        assert dense[3, 5] and dense[3, 127] and dense[7, 3]
        assert int(dense.sum()) == 3
        view = PackedRows(packed, tuple(sorted(rows)))
        assert dict(view) == rows


@pytest.mark.parametrize("name", scenario_names())
def test_round_trip_is_bit_identical(name, tmp_path):
    run = build(name)
    directory = run.export_reachability(tmp_path / name, size="tiny")
    for mmap in (True, False):
        handle = load_matrix(directory, mmap=mmap)
        problems = verify_identity(run.reachability(), handle,
                                   table2=run.table2())
        assert problems == [], f"{name} (mmap={mmap}): {problems}"
        assert handle.scenario == name
        assert handle.size == "tiny"


class TestTampering:
    @pytest.fixture(scope="class")
    def artifact(self, tmp_path_factory):
        run = build("europe2013")
        return run.export_reachability(
            tmp_path_factory.mktemp("artifact") / "europe2013")

    def _patched(self, artifact, tmp_path, **overrides):
        import shutil
        clone = tmp_path / "clone"
        shutil.copytree(artifact, clone)
        header = json.loads((clone / "header.json").read_text())
        header.update(overrides)
        (clone / "header.json").write_text(json.dumps(header))
        return clone

    def test_future_version_is_rejected(self, artifact, tmp_path):
        clone = self._patched(artifact, tmp_path,
                              version=FORMAT_VERSION + 1)
        with pytest.raises(ArtifactFormatError, match="version"):
            load_matrix(clone)

    def test_wrong_endianness_is_rejected(self, artifact, tmp_path):
        clone = self._patched(artifact, tmp_path, endianness="big")
        with pytest.raises(ArtifactFormatError, match="endian"):
            load_matrix(clone)

    def test_wrong_format_name_is_rejected(self, artifact, tmp_path):
        clone = self._patched(artifact, tmp_path, format="something-else")
        with pytest.raises(ArtifactFormatError, match="format"):
            load_matrix(clone)

    def test_missing_header_is_rejected(self, artifact, tmp_path):
        import shutil
        clone = tmp_path / "clone"
        shutil.copytree(artifact, clone)
        (clone / "header.json").unlink()
        with pytest.raises(ArtifactFormatError, match="header"):
            load_matrix(clone)

    def test_missing_plane_file_is_rejected(self, artifact, tmp_path):
        import shutil
        clone = tmp_path / "clone"
        shutil.copytree(artifact, clone)
        (clone / "plane_00_allow.npy").unlink()
        with pytest.raises(ArtifactFormatError):
            load_matrix(clone)
