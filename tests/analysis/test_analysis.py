"""Tests for the evaluation-section analyses (figures 5-13, sections 5.6-5.7)."""

import pytest

from repro.analysis.degrees import DegreeAnalysis
from repro.analysis.density import DensityReport, density_per_ixp, member_densities
from repro.analysis.estimation import GlobalEstimator, IXPEstimate
from repro.analysis.hybrid import HybridRelationshipAnalysis
from repro.analysis.policies import PolicyAnalysis
from repro.analysis.prefix_stats import (
    PrefixStats,
    prefix_multiplicity_ccdf,
    prefix_stats_for_route_server,
)
from repro.analysis.repellers import RepellerAnalysis
from repro.analysis.visibility import VisibilityAnalysis
from repro.bgp.policy import Relationship
from repro.bgp.prefix import Prefix
from repro.topology.customer_cone import customer_cone


class TestPrefixStats:
    def test_ccdf_and_fraction(self):
        announced = {
            1: [Prefix.parse("11.0.0.0/24"), Prefix.parse("11.0.1.0/24")],
            2: [Prefix.parse("11.0.1.0/24")],
            3: [Prefix.parse("11.0.1.0/24"), Prefix.parse("11.0.2.0/24")],
        }
        ccdf = prefix_multiplicity_ccdf(announced, max_members=3)
        assert ccdf[0] == (0, 1.0)
        assert ccdf[1][1] == pytest.approx(1 / 3)   # only 11.0.1.0/24 has >1
        stats = PrefixStats(ixp_name="X", multiplicity={
            Prefix.parse("11.0.0.0/24"): 1, Prefix.parse("11.0.1.0/24"): 3})
        assert stats.fraction_multi_member() == pytest.approx(0.5)
        assert stats.histogram() == {1: 1, 3: 1}

    def test_on_scenario_route_server(self, small_scenario):
        stats = prefix_stats_for_route_server(
            small_scenario.route_servers["DE-CIX"])
        assert stats.num_prefixes > 0
        ccdf = stats.ccdf()
        assert ccdf[0][1] == 1.0
        # The CCDF is non-increasing.
        values = [value for _, value in ccdf]
        assert all(a >= b for a, b in zip(values, values[1:]))


class TestVisibility:
    def test_overlap_accounting(self):
        analysis = VisibilityAnalysis(
            mlp_links=[(1, 2), (2, 3), (3, 4)],
            bgp_links=[(2, 1), (5, 6)],
            traceroute_links=[(3, 4)],
        )
        report = analysis.report
        assert report.num_mlp == 3
        assert report.mlp_visible_in_bgp == {(1, 2)}
        assert report.fraction_visible_in_bgp == pytest.approx(1 / 3)
        assert report.fraction_invisible == pytest.approx(2 / 3)
        assert report.fraction_visible_in_traceroute == pytest.approx(1 / 3)
        assert report.additional_peering_fraction() == pytest.approx(1.0)

    def test_per_member_series_sorted(self):
        analysis = VisibilityAnalysis(
            mlp_links=[(1, 2), (1, 3), (2, 3)], bgp_links=[(1, 2)])
        series = analysis.per_member_series()
        assert series[0]["mlp"] >= series[-1]["mlp"]
        row_for_1 = next(row for row in series if row["asn"] == 1)
        assert row_for_1["passive"] == 1


class TestDegrees:
    def test_figure7_fractions(self):
        degrees = {1: 0, 2: 0, 3: 5, 4: 50}
        analysis = DegreeAnalysis.from_mapping(degrees)
        stats = analysis.analyse([(1, 2), (1, 3), (3, 4)])
        assert stats.fraction_stub_stub() == pytest.approx(1 / 3)
        assert stats.fraction_with_stub() == pytest.approx(2 / 3)
        assert stats.fraction_small_degree(10) == pytest.approx(1.0)
        cdf = stats.cdf("smallest", points=(0, 10))
        assert cdf[-1][1] == 1.0

    def test_on_scenario(self, small_scenario, inference_result):
        graph = small_scenario.graph
        analysis = DegreeAnalysis(lambda asn: graph.transit_degree(asn)
                                  if graph.has_as(asn) else 0)
        stats = analysis.analyse(inference_result.all_links())
        summary = stats.summary()
        # Dense peering at the edge: most links involve small networks.
        assert summary["involves_stub"] > 0.3
        assert summary["involves_stub"] >= summary["stub_stub"]
        assert summary["small_degree"] >= summary["involves_stub"]


class TestDensity:
    def test_member_densities(self):
        densities = member_densities([(1, 2), (1, 3)], [1, 2, 3])
        assert densities[1] == pytest.approx(1.0)
        assert densities[2] == pytest.approx(0.5)

    def test_density_per_ixp_report(self):
        report = density_per_ixp(
            {"X": [(1, 2), (1, 3), (2, 3)]}, {"X": [1, 2, 3]})
        assert report.mean_density("X") == pytest.approx(1.0)
        assert report.overall_link_density("X", 3, 3) == pytest.approx(1.0)

    def test_on_scenario_band(self, small_scenario, inference_result):
        """Figure 12: density of RS peering should be high (paper: 0.79-0.95)."""
        report = density_per_ixp(
            inference_result.links_by_ixp(),
            {name: small_scenario.graph.rs_members_of_ixp(name)
             for name in inference_result.per_ixp},
            only_members_with_links=True)
        # Like the paper's figure 12, only look at IXPs with full
        # connectivity data (a route-server looking glass).
        big_ixps = [name for name, inf in inference_result.per_ixp.items()
                    if len(inf.members) >= 15
                    and name in small_scenario.rs_looking_glasses]
        assert big_ixps
        for name in big_ixps:
            assert report.mean_density(name) >= 0.6


class TestPolicies:
    def test_figure9_participation(self, small_scenario):
        analysis = PolicyAnalysis(small_scenario.graph, small_scenario.peeringdb)
        participation = analysis.participation_by_policy()
        assert participation.counts
        if "open" in participation.counts and "restrictive" in participation.counts:
            assert participation.participation_rate("open") >= \
                participation.participation_rate("restrictive")

    def test_figure10_matrix(self, small_scenario):
        analysis = PolicyAnalysis(small_scenario.graph, small_scenario.peeringdb)
        matrix = analysis.multi_ixp_matrix()
        assert matrix.total > 0
        total_fraction = matrix.fraction_single_ixp_with_rs() + matrix.fraction_no_rs()
        assert 0 < total_fraction <= 1.0

    def test_figure11_openness(self, small_scenario, inference_result):
        analysis = PolicyAnalysis(small_scenario.graph, small_scenario.peeringdb)
        reach = {name: inf.reachabilities
                 for name, inf in inference_result.per_ixp.items()}
        members = {name: small_scenario.graph.rs_members_of_ixp(name)
                   for name in inference_result.per_ixp}
        openness = analysis.export_openness_by_policy(reach, members)
        assert openness
        means = PolicyAnalysis.mean_openness(openness)
        if "open" in means and "restrictive" in means:
            assert means["open"] > means["restrictive"]
        # Figure 11's binary pattern: most members are nearly-all or nearly-none.
        assert PolicyAnalysis.binary_pattern_fraction(openness) > 0.6


class TestRepellers:
    def test_counts_and_attribution(self, small_scenario, inference_result):
        graph = small_scenario.graph
        analysis = RepellerAnalysis(
            customer_cone=lambda asn: customer_cone(graph, asn),
            direct_customers=lambda asn: set(graph.customers(asn)))
        report = analysis.analyse(
            {name: inf.reachabilities
             for name, inf in inference_result.per_ixp.items()},
            {name: graph.rs_members_of_ixp(name)
             for name in inference_result.per_ixp})
        assert report.total_exclusions > 0
        assert report.num_repellers > 0
        assert report.top_repellers(5)
        assert 0.0 <= report.fraction_provider_blocks_customer() <= 1.0
        scoped = report.by_geographic_scope(small_scenario.peeringdb)
        assert scoped

    def test_hypergiants_among_top_repellers(self, small_scenario, inference_result):
        """Section 5.5: content hypergiants with private peering are the
        most frequently excluded networks."""
        graph = small_scenario.graph
        analysis = RepellerAnalysis()
        report = analysis.analyse(
            {name: inf.reachabilities
             for name, inf in inference_result.per_ixp.items()},
            {name: graph.rs_members_of_ixp(name)
             for name in inference_result.per_ixp})
        top = [asn for asn, _ in report.top_repellers(10)]
        assert any(asn in small_scenario.internet.hypergiants for asn in top)


class TestHybrid:
    def test_detection(self):
        def relationship(a, b):
            if (a, b) == (1, 2):
                return Relationship.CUSTOMER     # 2 is customer of 1
            if (a, b) == (2, 1):
                return Relationship.PROVIDER
            return Relationship.PEER
        analysis = HybridRelationshipAnalysis(
            relationship, hybrid_evidence=lambda link: True)
        report = analysis.analyse([(1, 2), (3, 4)], {(1, 2): ["DE-CIX"]})
        assert report.num_candidates == 1
        candidate = report.candidates[0]
        assert candidate.customer == 2 and candidate.provider == 1
        assert candidate.ixps == ("DE-CIX",)
        assert report.num_confirmed == 1

    def test_on_scenario(self, small_scenario, inference_result):
        graph = small_scenario.graph
        analysis = HybridRelationshipAnalysis(graph.relationship)
        report = analysis.analyse(inference_result.all_links())
        truth_hybrid = set()
        for pairs in small_scenario.internet.hybrid_pairs.values():
            truth_hybrid |= pairs
        # Every detected candidate must indeed be a c2p pair in the graph.
        for candidate in report.candidates:
            assert graph.relationship(candidate.customer, candidate.provider) \
                is Relationship.PROVIDER


class TestEstimation:
    def test_density_assumptions(self):
        estimator = GlobalEstimator()
        assert estimator.density_for(IXPEstimate("A", 100)) == 0.70
        assert estimator.density_for(IXPEstimate("B", 100, pricing="usage")) == 0.60
        assert estimator.density_for(
            IXPEstimate("C", 100, has_route_server=False)) == 0.50
        assert estimator.density_for(
            IXPEstimate("D", 100, region="north-america")) == 0.40

    def test_conservative_cap(self):
        estimator = GlobalEstimator(density_cap=0.60)
        assert estimator.density_for(IXPEstimate("A", 100)) == 0.60

    def test_estimate_totals(self):
        estimator = GlobalEstimator()
        report = estimator.estimate([
            IXPEstimate("A", 100), IXPEstimate("B", 50, pricing="usage")])
        expected_a = int(round(100 * 99 / 2 * 0.7))
        assert report.estimates[0].estimated_links == expected_a
        assert report.total_ixp_peerings > report.unique_peerings > 0
        assert report.by_region()["europe"] == report.total_ixp_peerings

    def test_exact_overlap_with_member_lists(self):
        estimator = GlobalEstimator()
        shared = {1, 2, 3, 4, 5}
        report = estimator.estimate([
            IXPEstimate("A", 5, member_asns=set(shared)),
            IXPEstimate("B", 5, member_asns=set(shared)),
        ])
        # All pairs are shared, so unique peerings equal one IXP's worth.
        assert report.unique_peerings == report.estimates[0].estimated_links
