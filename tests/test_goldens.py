"""Golden regression fixtures for every registered scenario.

Each file under ``tests/goldens/`` freezes a scenario family's tiny-size
outcome: the full inferred link set, the Table 2 rows and a sha256
digest of the canonical link-set JSON.  The test regenerates every
scenario through the staged pipeline and diffs against the goldens, so
any change to generation, propagation (any backend), inference or their
orderings shows up as a reviewable fixture diff instead of a silent
behaviour change.

Refresh intentionally with::

    pytest tests/test_goldens.py --update-goldens
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import pytest

from repro.pipeline import ArtifactCache, ScenarioRun
from repro.scenarios.spec import get_scenario, scenario_names

GOLDEN_DIR = Path(__file__).parent / "goldens"
GOLDEN_SIZE = "tiny"


def links_digest(links) -> str:
    """sha256 over the canonical JSON form of a link list."""
    payload = json.dumps([[int(a), int(b)] for a, b in links],
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def build_golden(name: str) -> dict:
    """One scenario's golden payload, regenerated from scratch."""
    spec = get_scenario(name)
    run = ScenarioRun(spec.config(GOLDEN_SIZE), scenario=name,
                      cache=ArtifactCache())
    result = run.inference()
    links = [[int(a), int(b)] for a, b in result.all_links()]
    table2 = [{key: value for key, value in row.items()}
              for row in run.table2()]
    return {
        "scenario": name,
        "size": GOLDEN_SIZE,
        "num_links": len(links),
        "links_sha256": links_digest(links),
        "links": links,
        "table2": table2,
    }


def golden_path(name: str) -> Path:
    return GOLDEN_DIR / f"{name}.json"


@pytest.mark.parametrize("name", scenario_names())
def test_scenario_matches_golden(name, request):
    """Tiny-size links and Table 2 are bit-identical to the committed
    golden (regenerate intentionally with ``--update-goldens``)."""
    fresh = build_golden(name)
    path = golden_path(name)
    if request.config.getoption("--update-goldens"):
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(fresh, indent=1, sort_keys=True) + "\n")
    assert path.is_file(), (
        f"no golden for scenario {name!r}; run "
        f"pytest tests/test_goldens.py --update-goldens to create it")
    golden = json.loads(path.read_text())
    assert fresh["links_sha256"] == golden["links_sha256"], (
        f"{name}: link set diverged from golden "
        f"({fresh['num_links']} vs {golden['num_links']} links)")
    assert fresh["links"] == golden["links"]
    assert fresh["table2"] == golden["table2"]


def test_goldens_cover_every_registered_scenario():
    """No stale or missing fixtures: the goldens directory mirrors the
    scenario registry exactly."""
    assert GOLDEN_DIR.is_dir()
    on_disk = sorted(path.stem for path in GOLDEN_DIR.glob("*.json"))
    assert on_disk == scenario_names()
