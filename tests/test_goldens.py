"""Golden regression fixtures for every registered scenario.

Each file under ``tests/goldens/`` freezes a scenario family's tiny-size
outcome: the full inferred link set, the Table 2 rows and a sha256
digest of the canonical link-set JSON — pinned under **both** inference
backends (the per-IXP object engine and the vectorized bitset plane),
which are required to be bit-identical.  The test regenerates every
scenario through the staged pipeline and diffs against the goldens, so
any change to generation, propagation (any backend), inference or their
orderings shows up as a reviewable fixture diff instead of a silent
behaviour change — and a divergence *between* inference backends fails
the per-backend pin even before the differential suite runs.

Refresh intentionally with::

    pytest tests/test_goldens.py --update-goldens
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import pytest

from repro.pipeline import ArtifactCache, ScenarioRun
from repro.runtime.context import INFERENCE_BACKENDS
from repro.scenarios.spec import get_scenario, scenario_names

GOLDEN_DIR = Path(__file__).parent / "goldens"
GOLDEN_SIZE = "tiny"


def links_digest(links) -> str:
    """sha256 over the canonical JSON form of a link list."""
    payload = json.dumps([[int(a), int(b)] for a, b in links],
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def json_digest(payload) -> str:
    """sha256 over canonical JSON of an arbitrary payload."""
    encoded = json.dumps(payload, separators=(",", ":"), sort_keys=True)
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


def entry_rows(entries):
    """Canonical order-sensitive JSON rows for a RIB entry list."""
    return [[entry.peer_asn, str(entry.prefix), list(entry.as_path.asns),
             sorted(c.value for c in entry.communities),
             entry.collector, entry.timestamp]
            for entry in entries]


def lg_rows(lg):
    """Canonical order-sensitive query table of a looking glass; resets
    the query counter so the pin itself never perturbs cost analyses."""
    rows = []
    for prefix in lg.prefixes():
        for route in lg.show_ip_bgp_prefix(prefix):
            rows.append([str(prefix), list(route.as_path),
                         sorted(c.value for c in route.communities),
                         route.best, route.learned_from])
    lg.counter.reset()
    return rows


def observation_pins(run) -> dict:
    """Digests freezing the observation plane: the archive's entry lists
    (raw + stable + clean-stable, byte-exact including order) and every
    validation LG's full query table."""
    archive = run.artifact("collectors")["archive"]
    validation_lgs = run.artifact("viewpoints")["validation_lgs"]
    all_rows = entry_rows(archive.all_entries())
    return {
        "num_entries": len(all_rows),
        "entries_sha256": json_digest(all_rows),
        "stable_sha256": json_digest(entry_rows(archive.stable_entries())),
        "clean_stable_sha256": json_digest(
            entry_rows(archive.clean_stable_entries())),
        "num_validation_lgs": len(validation_lgs),
        "validation_lgs_sha256": json_digest(
            [[lg.asn, lg.display_all_paths, lg_rows(lg)]
             for lg in validation_lgs]),
    }


def build_golden(name: str) -> dict:
    """One scenario's golden payload, regenerated from scratch.

    The scenario builds once (shared cache); inference runs once per
    backend and each backend's links/Table 2 are pinned separately.
    """
    spec = get_scenario(name)
    cache = ArtifactCache()
    per_backend: dict = {}
    for backend in INFERENCE_BACKENDS:
        run = ScenarioRun(spec.config(GOLDEN_SIZE), scenario=name,
                          cache=cache, inference_backend=backend)
        result = run.inference()
        links = [[int(a), int(b)] for a, b in result.all_links()]
        per_backend[backend] = {
            "num_links": len(links),
            "links_sha256": links_digest(links),
            "links": links,
            "table2": [{key: value for key, value in row.items()}
                       for row in run.table2()],
        }
    reference = per_backend[INFERENCE_BACKENDS[0]]
    pin_run = ScenarioRun(spec.config(GOLDEN_SIZE), scenario=name,
                          cache=cache)
    return {
        "scenario": name,
        "size": GOLDEN_SIZE,
        "num_links": reference["num_links"],
        "links_sha256": reference["links_sha256"],
        "links": reference["links"],
        "table2": reference["table2"],
        "observation": observation_pins(pin_run),
        "inference_backends": {
            backend: {"num_links": payload["num_links"],
                      "links_sha256": payload["links_sha256"],
                      "table2": payload["table2"]}
            for backend, payload in per_backend.items()},
    }


def golden_path(name: str) -> Path:
    return GOLDEN_DIR / f"{name}.json"


@pytest.mark.parametrize("name", scenario_names())
def test_scenario_matches_golden(name, request):
    """Tiny-size links and Table 2 are bit-identical to the committed
    golden (regenerate intentionally with ``--update-goldens``)."""
    fresh = build_golden(name)
    path = golden_path(name)
    if request.config.getoption("--update-goldens"):
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(fresh, indent=1, sort_keys=True) + "\n")
    assert path.is_file(), (
        f"no golden for scenario {name!r}; run "
        f"pytest tests/test_goldens.py --update-goldens to create it")
    golden = json.loads(path.read_text())
    assert fresh["links_sha256"] == golden["links_sha256"], (
        f"{name}: link set diverged from golden "
        f"({fresh['num_links']} vs {golden['num_links']} links)")
    assert fresh["links"] == golden["links"]
    assert fresh["table2"] == golden["table2"]
    assert fresh["observation"] == golden["observation"], (
        f"{name}: archive entry lists or validation LG tables diverged")
    assert fresh["inference_backends"] == golden["inference_backends"], (
        f"{name}: per-inference-backend pins diverged")
    # The backends are required to be bit-identical to each other, not
    # just individually stable.
    pins = fresh["inference_backends"]
    assert pins["object"] == pins["bitset"], (
        f"{name}: object and bitset inference disagree")


@pytest.mark.parametrize("backend", ["batched", "compiled"])
@pytest.mark.parametrize("name", scenario_names())
def test_propagation_backends_match_golden_links(name, backend):
    """Every registered scenario reproduces its golden link set under
    every vectorized propagation backend — the goldens therefore pin
    frontier, batched and compiled alike."""
    pytest.importorskip("numpy")
    spec = get_scenario(name)
    run = ScenarioRun(spec.config(GOLDEN_SIZE), scenario=name,
                      cache=ArtifactCache(), backend=backend)
    links = [[int(a), int(b)] for a, b in run.inference().all_links()]
    golden = json.loads(golden_path(name).read_text())
    assert links_digest(links) == golden["links_sha256"], (
        f"{name}: {backend} links diverged from the frontier golden")
    assert links == golden["links"]


def test_goldens_cover_every_registered_scenario():
    """No stale or missing fixtures: the goldens directory mirrors the
    scenario registry exactly."""
    assert GOLDEN_DIR.is_dir()
    on_disk = sorted(path.stem for path in GOLDEN_DIR.glob("*.json"))
    assert on_disk == scenario_names()
