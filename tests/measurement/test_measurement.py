"""Tests for the traceroute and geolocation substrates."""

import pytest

from repro.bgp.prefix import Prefix
from repro.bgp.propagation import OriginSpec, PropagationEngine, bidirectional_adjacencies
from repro.bgp.policy import Relationship
from repro.measurement.geolocation import GeolocationDB
from repro.measurement.traceroute import TracerouteCampaign, TracerouteConfig
from repro.topology.as_graph import ASGraph, ASNode
from repro.topology.relationships import LinkType


@pytest.fixture
def rs_world():
    graph = ASGraph()
    for asn in (10, 20, 30, 40):
        graph.add_as(ASNode(asn=asn))
    graph.add_c2p(10, 20)
    graph.add_p2p(20, 30, ixp="DE-CIX", multilateral=True)
    graph.add_c2p(40, 30)
    adjacencies = graph.propagation_adjacencies()
    engine = PropagationEngine(adjacencies)
    origins = [OriginSpec(asn=10, prefixes=[Prefix.parse("11.0.0.0/24")])]
    propagation = engine.propagate(origins)
    return graph, propagation


class TestTraceroute:
    def test_rs_links_reported_as_member_rs_adjacencies(self, rs_world):
        graph, propagation = rs_world
        campaign = TracerouteCampaign(
            graph, TracerouteConfig(monitor_asns=[40]),
            rs_asn_by_ixp={"DE-CIX": 6695})
        links = campaign.derive_links(propagation)
        # The member-member RS link is invisible; both member-RS links appear.
        assert (20, 30) not in links
        assert (6695, 20) in links or (20, 6695) in {(a, b) for a, b in links}
        assert campaign.member_rs_adjacencies(links)

    def test_direct_reporting_mode(self, rs_world):
        graph, propagation = rs_world
        campaign = TracerouteCampaign(
            graph, TracerouteConfig(monitor_asns=[40],
                                    report_rs_hop_as_rs_link=False),
            rs_asn_by_ixp={"DE-CIX": 6695})
        assert (20, 30) in campaign.derive_links(propagation)

    def test_unknown_ixp_hop_disappears(self, rs_world):
        graph, propagation = rs_world
        campaign = TracerouteCampaign(
            graph, TracerouteConfig(monitor_asns=[40]), rs_asn_by_ixp={})
        links = campaign.derive_links(propagation)
        assert (20, 30) not in links
        assert all(6695 not in link for link in links)

    def test_ordinary_links_always_reported(self, rs_world):
        graph, propagation = rs_world
        campaign = TracerouteCampaign(
            graph, TracerouteConfig(monitor_asns=[40]),
            rs_asn_by_ixp={"DE-CIX": 6695})
        links = campaign.derive_links(propagation)
        assert (30, 40) in links and (10, 20) in links


class TestGeolocation:
    def test_region_lookup_exact_and_covering(self):
        db = GeolocationDB()
        db.register(Prefix.parse("11.0.0.0/16"), "eu-west")
        assert db.region_of(Prefix.parse("11.0.0.0/16")) == "eu-west"
        assert db.region_of(Prefix.parse("11.0.5.0/24")) == "eu-west"
        assert db.region_of(Prefix.parse("12.0.0.0/24")) is None

    def test_coordinates(self):
        db = GeolocationDB()
        db.register(Prefix.parse("11.0.0.0/16"), "eu-east")
        assert db.coordinates_of(Prefix.parse("11.0.0.0/16")) is not None
        assert db.coordinates_of(Prefix.parse("99.0.0.0/16")) is None

    def test_select_distant_prefers_spread(self):
        db = GeolocationDB()
        west = [Prefix.parse(f"11.0.{i}.0/24") for i in range(4)]
        east = [Prefix.parse(f"12.0.{i}.0/24") for i in range(4)]
        asia = [Prefix.parse("13.0.0.0/24")]
        db.register_many(west, "eu-west")
        db.register_many(east, "eu-east")
        db.register_many(asia, "asia")
        chosen = db.select_distant(west + east + asia, count=3)
        regions = {db.region_of(p) for p in chosen}
        assert regions == {"eu-west", "eu-east", "asia"}

    def test_select_distant_small_input_passthrough(self):
        db = GeolocationDB()
        prefixes = [Prefix.parse("11.0.0.0/24")]
        assert db.select_distant(prefixes, count=6) == prefixes
