"""Tests for the IXP object and the looking-glass servers."""

import pytest

from repro.bgp.communities import Community
from repro.bgp.prefix import Prefix
from repro.ixp.community_schemes import CommunityScheme
from repro.ixp.ixp import IXP
from repro.ixp.looking_glass import (
    ASLookingGlass,
    LGQueryCounter,
    LGRoute,
    RateLimitExceeded,
    RouteServerLookingGlass,
)
from repro.ixp.member import MemberExportPolicy
from repro.ixp.route_server import RouteServer


@pytest.fixture
def ixp_with_rs():
    scheme = CommunityScheme.rs_asn_style("DE-CIX", 6695)
    ixp = IXP(name="DE-CIX", region="eu-central",
              peering_lan=Prefix.parse("80.81.192.0/21"))
    rs = RouteServer("DE-CIX", 6695, scheme)
    ixp.add_route_server(rs)
    for asn in (100, 200, 300):
        ixp.add_member(asn)
        ixp.connect_to_route_server(
            asn, MemberExportPolicy.announce_to_all(asn, "DE-CIX"))
    ixp.add_member(400)  # present at the IXP but not on the route server
    rs.announce(100, Prefix.parse("11.0.0.0/24"))
    rs.announce(200, Prefix.parse("11.0.1.0/24"))
    rs.announce(300, Prefix.parse("11.0.1.0/24"))  # shared prefix
    return ixp


class TestIXP:
    def test_membership_and_ips(self, ixp_with_rs):
        assert ixp_with_rs.all_members() == [100, 200, 300, 400]
        assert ixp_with_rs.rs_members() == [100, 200, 300]
        ip = ixp_with_rs.member_ip(100)
        assert ip.startswith("80.81.")

    def test_member_list_publication(self, ixp_with_rs):
        assert ixp_with_rs.member_list() == [100, 200, 300, 400]
        ixp_with_rs.publishes_member_list = False
        assert ixp_with_rs.member_list() == []

    def test_session_counts_and_participation(self, ixp_with_rs):
        counts = ixp_with_rs.session_counts()
        assert counts["bilateral_sessions"] == 3
        assert counts["multilateral_sessions"] == 3
        assert ixp_with_rs.rs_participation_rate() == pytest.approx(0.75)

    def test_no_route_server_errors(self):
        ixp = IXP(name="EMPTY")
        assert not ixp.has_route_server()
        with pytest.raises(ValueError):
            _ = ixp.route_server
        ixp.add_member(1)
        with pytest.raises(ValueError):
            ixp.connect_to_route_server(1)

    def test_summary(self, ixp_with_rs):
        summary = ixp_with_rs.summary()
        assert summary["members"] == 4 and summary["rs_members"] == 3


class TestQueryCounter:
    def test_counts_and_duration(self):
        counter = LGQueryCounter()
        counter.record("a")
        counter.record("a")
        counter.record("b")
        assert counter.total == 3
        assert counter.counts["a"] == 2
        assert counter.estimated_duration(10) == 30
        counter.reset()
        assert counter.total == 0

    def test_rate_limit(self):
        counter = LGQueryCounter(max_queries=2)
        counter.record("x")
        counter.record("x")
        with pytest.raises(RateLimitExceeded):
            counter.record("x")


class TestRouteServerLookingGlass:
    def test_three_commands(self, ixp_with_rs):
        lg = RouteServerLookingGlass(ixp_with_rs.route_server)
        summary = lg.show_ip_bgp_summary()
        assert {asn for _, asn in summary} == {100, 200, 300}

        ip_200 = dict((asn, ip) for ip, asn in summary)[200]
        prefixes = lg.show_ip_bgp_neighbor_routes(ip_200)
        assert prefixes == [Prefix.parse("11.0.1.0/24")]

        routes = lg.show_ip_bgp_prefix(Prefix.parse("11.0.1.0/24"))
        assert {route.learned_from for route in routes} == {200, 300}
        assert lg.counter.total == 3

    def test_queries_are_counted_per_command(self, ixp_with_rs):
        lg = RouteServerLookingGlass(ixp_with_rs.route_server)
        lg.show_ip_bgp_summary()
        lg.show_ip_bgp_prefix(Prefix.parse("11.0.0.0/24"))
        assert lg.counter.counts["show ip bgp"] == 1
        assert lg.counter.counts["show ip bgp prefix"] == 1


class TestASLookingGlass:
    def make_lg(self, display_all):
        lg = ASLookingGlass(asn=999, display_all_paths=display_all)
        prefix = Prefix.parse("11.0.0.0/24")
        lg.load_route(LGRoute(prefix=prefix, as_path=(999, 100, 10),
                              best=False, learned_from=100))
        lg.load_route(LGRoute(prefix=prefix, as_path=(999, 200, 10),
                              best=True, learned_from=200,
                              communities=frozenset({Community(0, 6695)})))
        return lg, prefix

    def test_all_paths_lg_shows_everything(self):
        lg, prefix = self.make_lg(display_all=True)
        assert len(lg.show_ip_bgp_prefix(prefix)) == 2

    def test_best_path_lg_hides_alternatives(self):
        lg, prefix = self.make_lg(display_all=False)
        routes = lg.show_ip_bgp_prefix(prefix)
        assert len(routes) == 1
        assert routes[0].best

    def test_visible_links(self):
        lg, prefix = self.make_lg(display_all=True)
        links = lg.visible_links(prefix)
        assert (100, 999) in links and (10, 200) in links

    def test_unknown_prefix_empty(self):
        lg, _ = self.make_lg(display_all=True)
        assert lg.show_ip_bgp_prefix(Prefix.parse("99.0.0.0/24")) == []

    def test_load_route_server_exports(self, ixp_with_rs):
        lg = ASLookingGlass(asn=100)
        count = lg.load_route_server_exports(ixp_with_rs.route_server)
        assert count == 2  # routes of 200 and 300
        assert lg.load_route_server_exports(ixp_with_rs.route_server) >= 0
        outsider = ASLookingGlass(asn=555)
        assert outsider.load_route_server_exports(ixp_with_rs.route_server) == 0

    def test_mark_best_paths(self):
        lg = ASLookingGlass(asn=1)
        prefix = Prefix.parse("11.0.0.0/24")
        lg.load_route(LGRoute(prefix=prefix, as_path=(1, 2, 3)))
        lg.load_route(LGRoute(prefix=prefix, as_path=(1, 3)))
        lg.mark_best_paths()
        best = [r for r in lg.show_ip_bgp_prefix(prefix) if r.best]
        assert len(best) == 1
        assert best[0].as_path == (1, 3)
