"""Tests for member export policies and the route server."""

import pytest

from repro.bgp.communities import Community
from repro.bgp.prefix import Prefix
from repro.ixp.community_schemes import CommunityScheme
from repro.ixp.member import MemberExportPolicy
from repro.ixp.route_server import RouteServer


@pytest.fixture
def scheme():
    return CommunityScheme.rs_asn_style("DE-CIX", 6695)


@pytest.fixture
def route_server(scheme):
    rs = RouteServer("DE-CIX", 6695, scheme)
    rs.add_member(100, MemberExportPolicy.announce_to_all(100, "DE-CIX"))
    rs.add_member(200, MemberExportPolicy.all_except(200, "DE-CIX", {300}))
    rs.add_member(300, MemberExportPolicy.none_except(300, "DE-CIX", {100}))
    rs.add_member(400, MemberExportPolicy.announce_to_all(400, "DE-CIX"))
    for asn, prefix in [(100, "11.0.0.0/24"), (200, "11.0.1.0/24"),
                        (300, "11.0.2.0/24"), (400, "11.0.3.0/24")]:
        rs.announce(asn, Prefix.parse(prefix))
    return rs


class TestMemberExportPolicy:
    def test_all_except(self):
        policy = MemberExportPolicy.all_except(1, "X", {2})
        assert policy.allows(3) and not policy.allows(2)
        assert policy.allowed_members([1, 2, 3]) == {3}
        assert policy.blocked_members([1, 2, 3]) == {2}

    def test_none_except(self):
        policy = MemberExportPolicy.none_except(1, "X", {2})
        assert policy.allows(2) and not policy.allows(3)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            MemberExportPolicy(member_asn=1, ixp_name="X", mode="bogus")

    def test_communities_for_policy(self, scheme):
        policy = MemberExportPolicy.all_except(1, "DE-CIX", {5410})
        communities = policy.communities_for(scheme)
        assert Community(0, 5410) in communities

    def test_prefix_override(self, scheme):
        base = MemberExportPolicy.announce_to_all(1, "DE-CIX")
        special = Prefix.parse("11.9.9.0/24")
        policy = base.with_override(special, "none-except", {42})
        assert policy.allows(7)                      # default prefix
        assert not policy.allows(7, special)         # overridden prefix
        assert policy.allows(42, special)
        communities = policy.communities_for(scheme, special)
        assert Community(0, 6695) in communities


class TestRouteServer:
    def test_membership_management(self, route_server):
        assert route_server.members() == [100, 200, 300, 400]
        assert route_server.is_member(100)
        ip = route_server.member_ip(100)
        assert route_server.member_by_ip(ip) == 100

    def test_policy_mismatch_rejected(self, scheme):
        rs = RouteServer("X", 1, scheme)
        with pytest.raises(ValueError):
            rs.add_member(5, MemberExportPolicy.announce_to_all(6, "X"))

    def test_announce_requires_membership(self, route_server):
        with pytest.raises(KeyError):
            route_server.announce(999, Prefix.parse("11.5.0.0/24"))

    def test_announcement_carries_policy_communities(self, route_server):
        entries = route_server.routes_from_member(200)
        assert len(entries) == 1
        assert Community(0, 300) in entries[0].communities

    def test_rib_queries(self, route_server):
        prefix = Prefix.parse("11.0.1.0/24")
        assert route_server.members_announcing(prefix) == [200]
        assert route_server.announced_prefixes(300) == [Prefix.parse("11.0.2.0/24")]
        assert len(route_server) == 4

    def test_withdraw(self, route_server):
        prefix = Prefix.parse("11.0.1.0/24")
        assert route_server.withdraw(200, prefix)
        assert not route_server.withdraw(200, prefix)
        assert route_server.members_announcing(prefix) == []

    def test_allowed_targets_all_except(self, route_server):
        entry = route_server.routes_from_member(200)[0]
        assert route_server.allowed_targets(entry) == {100, 400}

    def test_allowed_targets_none_except(self, route_server):
        entry = route_server.routes_from_member(300)[0]
        assert route_server.allowed_targets(entry) == {100}

    def test_exports_to_respects_filters(self, route_server):
        # 300 is excluded by 200 and itself only includes 100.
        prefixes_seen_by_300 = {e.prefix for e in route_server.exports_to(300)}
        assert Prefix.parse("11.0.1.0/24") not in prefixes_seen_by_300
        assert Prefix.parse("11.0.0.0/24") in prefixes_seen_by_300
        # 100 receives 300's routes (it is included).
        prefixes_seen_by_100 = {e.prefix for e in route_server.exports_to(100)}
        assert Prefix.parse("11.0.2.0/24") in prefixes_seen_by_100

    def test_served_pairs_reciprocal_only(self, route_server):
        pairs = route_server.served_pairs()
        assert (100, 300) in pairs          # mutual allow
        assert (200, 300) not in pairs      # blocked both ways
        assert (300, 400) not in pairs      # 300 does not include 400
        assert (100, 200) in pairs and (100, 400) in pairs and (200, 400) in pairs

    def test_peering_density(self, route_server):
        density = route_server.peering_density()
        assert density[100] == pytest.approx(3 / 3)
        assert density[300] == pytest.approx(1 / 3)

    def test_non_transparent_rs_prepends_its_asn(self, scheme):
        rs = RouteServer("TOP-IX", 12956, scheme, transparent=False)
        rs.add_member(1, MemberExportPolicy.announce_to_all(1, "TOP-IX"))
        rs.add_member(2, MemberExportPolicy.announce_to_all(2, "TOP-IX"))
        rs.announce(1, Prefix.parse("11.7.0.0/24"))
        exported = rs.exports_to(2)
        assert exported[0].as_path[0] == 12956

    def test_remove_member_drops_routes(self, route_server):
        route_server.remove_member(200)
        assert not route_server.is_member(200)
        assert route_server.members_announcing(Prefix.parse("11.0.1.0/24")) == []

    def test_explicit_communities_override_policy(self, route_server, scheme):
        prefix = Prefix.parse("11.0.9.0/24")
        route_server.announce(100, prefix,
                              communities={scheme.none()})
        entry = route_server.routes_for_prefix(prefix)[0]
        assert route_server.allowed_targets(entry) == set()

    def test_32bit_member_filterable(self, scheme):
        rs = RouteServer("DE-CIX", 6695, scheme)
        rs.add_member(200001, MemberExportPolicy.announce_to_all(200001, "DE-CIX"))
        rs.add_member(100, MemberExportPolicy.all_except(100, "DE-CIX", {200001}))
        rs.add_member(300, MemberExportPolicy.announce_to_all(300, "DE-CIX"))
        rs.announce(100, Prefix.parse("11.8.0.0/24"))
        entry = rs.routes_from_member(100)[0]
        targets = rs.allowed_targets(entry)
        assert 200001 not in targets and 300 in targets
