"""Tests for the per-IXP route-server community grammars (Table 1)."""

import pytest

from repro.bgp.asn import Private16BitMapper
from repro.bgp.communities import Community
from repro.ixp.community_schemes import (
    CommunityScheme,
    RSAction,
    SchemeRegistry,
    classify_against_schemes,
)


@pytest.fixture
def decix():
    return CommunityScheme.rs_asn_style("DE-CIX", 6695)


@pytest.fixture
def ecix():
    return CommunityScheme.offset_style("ECIX", 9033)


class TestTable1Encodings:
    def test_decix_values_match_table1(self, decix):
        assert decix.all_() == Community(6695, 6695)
        assert decix.none() == Community(0, 6695)
        assert decix.exclude(5410) == Community(0, 5410)
        assert decix.include(8359) == Community(6695, 8359)

    def test_ecix_values_match_table1(self, ecix):
        assert ecix.all_() == Community(9033, 9033)
        assert ecix.none() == Community(65000, 0)
        assert ecix.exclude(5410) == Community(64960, 5410)
        assert ecix.include(8359) == Community(65000, 8359)

    def test_32bit_rs_asn_rejected(self):
        with pytest.raises(ValueError):
            CommunityScheme.rs_asn_style("X", 200000)

    def test_from_style_dispatch(self):
        assert CommunityScheme.from_style("rs-asn", "A", 100).include_high == 100
        assert CommunityScheme.from_style("offset", "B", 100).exclude_high == 64960
        assert CommunityScheme.from_style("zero-exclude", "C", 100).omit_all_by_default
        with pytest.raises(ValueError):
            CommunityScheme.from_style("bogus", "D", 100)

    def test_table1_row(self, decix):
        row = decix.table1_row()
        assert row["ALL"] == "6695:6695"
        assert row["EXCLUDE"] == "0:peer-asn"


class TestClassification:
    def test_classify_each_action(self, decix):
        assert decix.classify(Community(6695, 6695)).action is RSAction.ALL
        assert decix.classify(Community(0, 6695)).action is RSAction.NONE
        excl = decix.classify(Community(0, 5410))
        assert excl.action is RSAction.EXCLUDE and excl.peer_asn == 5410
        incl = decix.classify(Community(6695, 8359))
        assert incl.action is RSAction.INCLUDE and incl.peer_asn == 8359

    def test_foreign_community_not_classified(self, decix):
        assert decix.classify(Community(3356, 100)) is None
        assert not decix.is_rs_community(Community(3356, 100))

    def test_mentions_rs_asn(self, decix):
        assert decix.mentions_rs_asn([Community(6695, 6695)])
        assert decix.mentions_rs_asn([Community(0, 6695)])
        assert not decix.mentions_rs_asn([Community(0, 5410)])

    def test_figure2_example_none_include(self, decix):
        """Figure 2a: 0:6695 6695:8359 6695:8447 -> only 8359 and 8447."""
        communities = [Community(0, 6695), Community(6695, 8359),
                       Community(6695, 8447)]
        classified = decix.classify_set(communities)
        actions = {c.action for _, c in classified}
        assert RSAction.NONE in actions and RSAction.INCLUDE in actions

    def test_figure2_example_all_exclude(self, decix):
        """Figure 2b: 6695:6695 0:5410 0:8732 -> all except 5410, 8732."""
        communities = [Community(6695, 6695), Community(0, 5410),
                       Community(0, 8732)]
        classified = decix.classify_set(communities)
        excluded = {c.peer_asn for _, c in classified
                    if c.action is RSAction.EXCLUDE}
        assert excluded == {5410, 8732}


class TestEncoding:
    def test_encode_all_except(self, decix):
        communities = decix.encode_policy("all-except", [5410, 8732])
        assert Community(6695, 6695) in communities
        assert Community(0, 5410) in communities
        assert Community(0, 8732) in communities

    def test_encode_none_except(self, decix):
        communities = decix.encode_policy("none-except", [8359])
        assert Community(0, 6695) in communities
        assert Community(6695, 8359) in communities

    def test_encode_unknown_mode_rejected(self, decix):
        with pytest.raises(ValueError):
            decix.encode_policy("sometimes", [])

    def test_omit_all_by_default_leaves_bare_excludes(self):
        mskix = CommunityScheme.zero_exclude_style("MSK-IX", 8631)
        communities = mskix.encode_policy("all-except", [5410])
        assert communities == frozenset({Community(0, 5410)})
        # No community at all for the pure-default policy.
        assert mskix.encode_policy("all-except", []) == frozenset()

    def test_32bit_peer_requires_mapper(self, decix):
        with pytest.raises(ValueError):
            decix.exclude(200000)
        mapper = Private16BitMapper()
        mapper.register(200000)
        community = decix.exclude(200000, mapper)
        assert community.high == 0
        assert mapper.resolve(community.low) == 200000

    def test_encode_decode_roundtrip(self, ecix):
        communities = ecix.encode_policy("all-except", [100, 200])
        classified = ecix.classify_set(communities)
        excluded = {c.peer_asn for _, c in classified
                    if c.action is RSAction.EXCLUDE}
        assert excluded == {100, 200}


class TestRegistry:
    def test_registry_lookup_and_table(self, decix, ecix):
        registry = SchemeRegistry([decix, ecix])
        assert registry.get("DE-CIX") is decix
        assert "ECIX" in registry
        assert len(registry) == 2
        assert len(registry.table1()) == 2
        assert registry.schemes_for_rs_asn(6695) == [decix]

    def test_classify_against_schemes(self, decix, ecix):
        registry = SchemeRegistry([decix, ecix])
        matches = classify_against_schemes([Community(6695, 6695)], registry)
        assert "DE-CIX" in matches
        assert "ECIX" not in matches
