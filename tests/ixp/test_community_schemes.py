"""Tests for the per-IXP route-server community grammars (Table 1)."""

import pytest

from repro.bgp.asn import Private16BitMapper
from repro.bgp.communities import Community
from repro.ixp.community_schemes import (
    CommunityScheme,
    RSAction,
    SchemeRegistry,
    classify_against_schemes,
)


@pytest.fixture
def decix():
    return CommunityScheme.rs_asn_style("DE-CIX", 6695)


@pytest.fixture
def ecix():
    return CommunityScheme.offset_style("ECIX", 9033)


class TestTable1Encodings:
    def test_decix_values_match_table1(self, decix):
        assert decix.all_() == Community(6695, 6695)
        assert decix.none() == Community(0, 6695)
        assert decix.exclude(5410) == Community(0, 5410)
        assert decix.include(8359) == Community(6695, 8359)

    def test_ecix_values_match_table1(self, ecix):
        assert ecix.all_() == Community(9033, 9033)
        assert ecix.none() == Community(65000, 0)
        assert ecix.exclude(5410) == Community(64960, 5410)
        assert ecix.include(8359) == Community(65000, 8359)

    def test_32bit_rs_asn_rejected(self):
        with pytest.raises(ValueError):
            CommunityScheme.rs_asn_style("X", 200000)

    def test_from_style_dispatch(self):
        assert CommunityScheme.from_style("rs-asn", "A", 100).include_high == 100
        assert CommunityScheme.from_style("offset", "B", 100).exclude_high == 64960
        assert CommunityScheme.from_style("zero-exclude", "C", 100).omit_all_by_default
        with pytest.raises(ValueError):
            CommunityScheme.from_style("bogus", "D", 100)

    def test_table1_row(self, decix):
        row = decix.table1_row()
        assert row["ALL"] == "6695:6695"
        assert row["EXCLUDE"] == "0:peer-asn"


class TestClassification:
    def test_classify_each_action(self, decix):
        assert decix.classify(Community(6695, 6695)).action is RSAction.ALL
        assert decix.classify(Community(0, 6695)).action is RSAction.NONE
        excl = decix.classify(Community(0, 5410))
        assert excl.action is RSAction.EXCLUDE and excl.peer_asn == 5410
        incl = decix.classify(Community(6695, 8359))
        assert incl.action is RSAction.INCLUDE and incl.peer_asn == 8359

    def test_foreign_community_not_classified(self, decix):
        assert decix.classify(Community(3356, 100)) is None
        assert not decix.is_rs_community(Community(3356, 100))

    def test_mentions_rs_asn(self, decix):
        assert decix.mentions_rs_asn([Community(6695, 6695)])
        assert decix.mentions_rs_asn([Community(0, 6695)])
        assert not decix.mentions_rs_asn([Community(0, 5410)])

    def test_figure2_example_none_include(self, decix):
        """Figure 2a: 0:6695 6695:8359 6695:8447 -> only 8359 and 8447."""
        communities = [Community(0, 6695), Community(6695, 8359),
                       Community(6695, 8447)]
        classified = decix.classify_set(communities)
        actions = {c.action for _, c in classified}
        assert RSAction.NONE in actions and RSAction.INCLUDE in actions

    def test_figure2_example_all_exclude(self, decix):
        """Figure 2b: 6695:6695 0:5410 0:8732 -> all except 5410, 8732."""
        communities = [Community(6695, 6695), Community(0, 5410),
                       Community(0, 8732)]
        classified = decix.classify_set(communities)
        excluded = {c.peer_asn for _, c in classified
                    if c.action is RSAction.EXCLUDE}
        assert excluded == {5410, 8732}


class TestEncoding:
    def test_encode_all_except(self, decix):
        communities = decix.encode_policy("all-except", [5410, 8732])
        assert Community(6695, 6695) in communities
        assert Community(0, 5410) in communities
        assert Community(0, 8732) in communities

    def test_encode_none_except(self, decix):
        communities = decix.encode_policy("none-except", [8359])
        assert Community(0, 6695) in communities
        assert Community(6695, 8359) in communities

    def test_encode_unknown_mode_rejected(self, decix):
        with pytest.raises(ValueError):
            decix.encode_policy("sometimes", [])

    def test_omit_all_by_default_leaves_bare_excludes(self):
        mskix = CommunityScheme.zero_exclude_style("MSK-IX", 8631)
        communities = mskix.encode_policy("all-except", [5410])
        assert communities == frozenset({Community(0, 5410)})
        # No community at all for the pure-default policy.
        assert mskix.encode_policy("all-except", []) == frozenset()

    def test_32bit_peer_requires_mapper(self, decix):
        with pytest.raises(ValueError):
            decix.exclude(200000)
        mapper = Private16BitMapper()
        mapper.register(200000)
        community = decix.exclude(200000, mapper)
        assert community.high == 0
        assert mapper.resolve(community.low) == 200000

    def test_encode_decode_roundtrip(self, ecix):
        communities = ecix.encode_policy("all-except", [100, 200])
        classified = ecix.classify_set(communities)
        excluded = {c.peer_asn for _, c in classified
                    if c.action is RSAction.EXCLUDE}
        assert excluded == {100, 200}


class TestRegistry:
    def test_registry_lookup_and_table(self, decix, ecix):
        registry = SchemeRegistry([decix, ecix])
        assert registry.get("DE-CIX") is decix
        assert "ECIX" in registry
        assert len(registry) == 2
        assert len(registry.table1()) == 2
        assert registry.schemes_for_rs_asn(6695) == [decix]

    def test_classify_against_schemes(self, decix, ecix):
        registry = SchemeRegistry([decix, ecix])
        matches = classify_against_schemes([Community(6695, 6695)], registry)
        assert "DE-CIX" in matches
        assert "ECIX" not in matches


class TestFromStyleEdgeCases:
    def test_unknown_style_names_the_offender(self):
        with pytest.raises(ValueError, match="sideways"):
            CommunityScheme.from_style("sideways", "X", 100)

    @pytest.mark.parametrize("style", ["rs-asn", "zero-exclude", "offset"])
    def test_32bit_rs_asn_rejected_for_every_style(self, style):
        with pytest.raises(ValueError, match="16 bits"):
            CommunityScheme.from_style(style, "X", 200000)

    def test_styles_produce_distinct_grammars(self):
        rs, zero, offset = (CommunityScheme.from_style(style, "X", 100)
                            for style in ("rs-asn", "zero-exclude", "offset"))
        assert rs.exclude_high == zero.exclude_high == 0
        assert offset.exclude_high == 64960
        assert not rs.omit_all_by_default
        assert zero.omit_all_by_default


class TestClassificationCollisions:
    """ASN values colliding with the scheme's fixed-valued communities:
    the fixed forms (ALL / NONE) must win over the per-peer readings."""

    def test_rs_asn_style_exclude_of_rs_asn_reads_as_none(self, decix):
        # EXCLUDE(6695) encodes as 0:6695, which *is* the NONE community.
        collision = decix.exclude(6695)
        assert collision == decix.none()
        assert decix.classify(collision).action is RSAction.NONE

    def test_offset_style_include_of_zero_reads_as_none(self, ecix):
        # INCLUDE(0) encodes as 65000:0, which *is* the NONE community.
        collision = ecix.include(0)
        assert collision == ecix.none()
        assert ecix.classify(collision).action is RSAction.NONE

    def test_offset_style_rs_asn_colliding_with_exclude_high(self):
        # An RS ASN equal to the EXCLUDE offset: ALL (64960:64960) must
        # not be mis-read as EXCLUDE(64960).
        scheme = CommunityScheme.offset_style("WEIRD-IX", 64960)
        all_classified = scheme.classify(Community(64960, 64960))
        assert all_classified.action is RSAction.ALL
        # Other 64960:* values still classify as per-peer EXCLUDEs.
        excl = scheme.classify(Community(64960, 7))
        assert excl.action is RSAction.EXCLUDE and excl.peer_asn == 7

    def test_offset_style_peer_equal_to_include_high(self, ecix):
        # INCLUDE(65000) is representable and classifies as an include.
        community = ecix.include(65000)
        classified = ecix.classify(community)
        assert classified.action is RSAction.INCLUDE
        assert classified.peer_asn == 65000


class TestZeroExcludeRoundTrip:
    @pytest.fixture
    def mskix(self):
        return CommunityScheme.zero_exclude_style("MSK-IX", 8631)

    def test_round_trip_recovers_excluded_peers(self, mskix):
        encoded = mskix.encode_policy("all-except", [5410, 8732])
        classified = mskix.classify_set(encoded)
        assert {c.peer_asn for _, c in classified
                if c.action is RSAction.EXCLUDE} == {5410, 8732}
        # No ALL marker -> the RS ASN never appears: the section 4.2
        # disambiguation path has to work without it.
        assert not mskix.mentions_rs_asn(encoded)

    def test_empty_policy_round_trips_to_no_communities(self, mskix):
        encoded = mskix.encode_policy("all-except", [])
        assert encoded == frozenset()
        assert mskix.classify_set(encoded) == []

    def test_forced_all_marker_restores_rs_asn_signal(self, mskix):
        encoded = mskix.encode_policy("all-except", [5410],
                                      include_all_marker=True)
        assert mskix.all_() in encoded
        assert mskix.mentions_rs_asn(encoded)

    def test_none_except_unaffected_by_omission_default(self, mskix):
        encoded = mskix.encode_policy("none-except", [5410])
        actions = {c.action for _, c in mskix.classify_set(encoded)}
        assert actions == {RSAction.NONE, RSAction.INCLUDE}
