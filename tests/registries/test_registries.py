"""Tests for the RPSL parser, IRR database and PeeringDB substrates."""

import pytest

from repro.registries.irr import ASSet, AutNumPolicy, IRRDatabase
from repro.registries.peeringdb import PeeringDB, PeeringDBRecord
from repro.registries.rpsl import (
    RPSLObject,
    parse_as_references,
    parse_rpsl,
    serialise_rpsl,
)
from repro.topology.as_graph import GeographicScope, PeeringPolicy

SAMPLE_RPSL = """
aut-num: AS8359
as-name: MTS
import: from AS6695 accept ANY
export: to AS6695 announce AS-MTS
source: RIPE

as-set: AS-DECIX-RS
members: AS8359, AS8447
members: AS15169
source: RIPE
"""


class TestRPSL:
    def test_parse_objects(self):
        objects = parse_rpsl(SAMPLE_RPSL)
        assert len(objects) == 2
        aut_num = objects[0]
        assert aut_num.object_class == "aut-num"
        assert aut_num.key == "AS8359"
        assert aut_num.first("as-name") == "MTS"
        assert aut_num.values("import") == ["from AS6695 accept ANY"]

    def test_continuation_lines(self):
        text = "as-set: AS-X\nmembers: AS1,\n AS2\n"
        objects = parse_rpsl(text)
        assert parse_as_references(objects[0].values("members")[0]) == [1, 2]

    def test_comments_ignored(self):
        objects = parse_rpsl("# comment\naut-num: AS5\nsource: RADB\n")
        assert objects[0].source == "RADB"

    def test_serialise_roundtrip(self):
        objects = parse_rpsl(SAMPLE_RPSL)
        text = serialise_rpsl(objects)
        reparsed = parse_rpsl(text)
        assert [o.key for o in reparsed] == [o.key for o in objects]

    def test_parse_as_references(self):
        assert parse_as_references("from AS6695 accept ANY") == [6695]
        assert parse_as_references("AS1, AS2 AS-FOO as3") == [1, 2, 3]
        assert parse_as_references("nothing here") == []


class TestIRRDatabase:
    def test_load_rpsl_objects(self):
        irr = IRRDatabase()
        count = irr.load_rpsl_objects(parse_rpsl(SAMPLE_RPSL))
        assert count == 2
        assert irr.aut_num(8359) is not None
        assert irr.as_set("as-decix-rs").members == {8359, 8447, 15169}

    def test_aut_num_policy_semantics(self):
        policy = AutNumPolicy(asn=1, blocked_import={5}, blocked_export={5, 6})
        assert not policy.import_allows(5)
        assert policy.import_allows(6)
        assert not policy.export_allows(6)
        assert policy.references_asn(5)

    def test_find_as_sets_containing(self):
        irr = IRRDatabase()
        irr.register_as_set(ASSet(name="AS-A", members={1, 2}))
        irr.register_as_set(ASSet(name="AS-B", members={2, 3}))
        assert {s.name for s in irr.find_as_sets_containing(2)} == {"AS-A", "AS-B"}

    def test_ases_referencing_rs_asn(self):
        irr = IRRDatabase()
        irr.register_aut_num(AutNumPolicy(asn=10, rs_peers={8714}))
        irr.register_aut_num(AutNumPolicy(asn=11, rs_peers={6695}))
        assert irr.ases_referencing(8714) == [10]

    def test_len(self):
        irr = IRRDatabase()
        irr.register_aut_num(AutNumPolicy(asn=1))
        irr.register_as_set(ASSet(name="AS-X"))
        assert len(irr) == 2


class TestPeeringDB:
    def test_register_and_query(self):
        db = PeeringDB()
        db.register(PeeringDBRecord(asn=15169, name="Google",
                                    policy=PeeringPolicy.OPEN,
                                    scope=GeographicScope.GLOBAL,
                                    ixps={"DE-CIX", "AMS-IX"}))
        assert db.policy_of(15169) is PeeringPolicy.OPEN
        assert db.scope_of(15169) is GeographicScope.GLOBAL
        assert db.networks_at_ixp("DE-CIX") == [15169]
        assert db.networks_with_policy(PeeringPolicy.OPEN) == [15169]
        assert 15169 in db and len(db) == 1

    def test_unregistered_network_defaults(self):
        db = PeeringDB()
        assert db.record(1) is None
        assert db.policy_of(1) is PeeringPolicy.UNKNOWN
        assert db.scope_of(1) is GeographicScope.NOT_AVAILABLE

    def test_looking_glasses(self):
        db = PeeringDB()
        db.add_looking_glass(10, "https://lg.example", display_all_paths=False)
        db.add_looking_glass(20, "https://lg2.example")
        assert len(db.looking_glasses()) == 2
        assert len(db.looking_glasses(relevant_asns={10})) == 1
        assert db.looking_glasses(relevant_asns={10})[0].display_all_paths is False
