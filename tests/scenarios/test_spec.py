"""The scenario-spec layer: registry, size tables, and the families.

The acceptance-critical properties:

* ``europe2013`` resolved through the registry produces exactly the
  historical workload configurations (the spec path is bit-identical —
  the heavy equivalence is asserted by the pipeline suite, here we pin
  the configs);
* every registered family instantiates end-to-end through
  :class:`~repro.pipeline.run.ScenarioRun` at tiny scale, with warm
  re-runs hitting the cache and ``workers > 1`` sharding producing
  identical links.
"""

from __future__ import annotations

import pytest

from repro.pipeline import ArtifactCache, ScenarioRun
from repro.scenarios.base import ScenarioConfig, default_stage_names, stage_graph_for
from repro.scenarios.families import (
    GROWTH_SWEEP_YEARS,
    growth_sweep_spec,
    hypergiant_era_ixps,
    sparse_view_ixps,
)
from repro.scenarios.spec import (
    DEFAULT_SIZES,
    ScenarioRegistry,
    ScenarioSpec,
    get_scenario,
    scenario_names,
)
from repro.scenarios.workloads import (
    large_scenario_config,
    medium_scenario_config,
    scenario_config,
    scenario_run,
    small_scenario_config,
    workload_sizes,
)

#: Families beyond europe2013 that must run end-to-end.
NEW_FAMILIES = ("hypergiant2016", "sparse-view", "growth-sweep-2016")


class TestRegistry:
    def test_builtins_registered(self):
        names = scenario_names()
        assert "europe2013" in names
        assert set(NEW_FAMILIES) <= set(names)
        assert len(names) >= 4

    def test_unknown_scenario_raises_with_candidates(self):
        with pytest.raises(KeyError, match="unknown scenario.*europe2013"):
            get_scenario("atlantis2099")

    def test_duplicate_registration_rejected(self):
        registry = ScenarioRegistry()
        registry.register(ScenarioSpec(name="x"))
        with pytest.raises(ValueError, match="already registered"):
            registry.register(ScenarioSpec(name="x"))
        registry.register(ScenarioSpec(name="x", description="v2"),
                          replace_existing=True)
        assert registry.get("x").description == "v2"

    def test_iteration_is_name_sorted(self):
        registry = ScenarioRegistry()
        for name in ("zeta", "alpha", "mid"):
            registry.register(ScenarioSpec(name=name))
        assert [spec.name for spec in registry] == ["alpha", "mid", "zeta"]

    def test_with_overrides_derives_renamed_spec(self):
        base = get_scenario("europe2013")
        derived = base.with_overrides(name="europe2013-variant",
                                      member_growth=2.0)
        assert derived.name == "europe2013-variant"
        assert derived.member_growth == 2.0
        assert base.member_growth == 1.0


class TestSizeTable:
    def test_europe2013_small_matches_historical_workload(self):
        assert get_scenario("europe2013").config("small") == \
            small_scenario_config()

    def test_europe2013_medium_and_large_match(self):
        spec = get_scenario("europe2013")
        assert spec.config("medium") == medium_scenario_config()
        assert spec.config("large") == large_scenario_config()

    def test_full_size_matches_default_config(self):
        assert get_scenario("europe2013").config("full") == ScenarioConfig()

    def test_seed_threads_through(self):
        config = get_scenario("europe2013").config("small", seed=777)
        assert config.generator.seed == 777
        assert config.seed == 778
        assert config == small_scenario_config(seed=777)

    def test_unknown_size_rejected(self):
        with pytest.raises(ValueError, match="no size"):
            get_scenario("europe2013").config("galactic")

    def test_workload_sizes_exposes_table(self):
        assert set(workload_sizes()) == set(DEFAULT_SIZES)

    def test_scenario_run_rejects_unknown_workload(self):
        with pytest.raises(ValueError, match="unknown workload"):
            scenario_run("galactic")


class TestFamilyConfigs:
    def test_hypergiant2016_roster_and_knobs(self):
        config = get_scenario("hypergiant2016").config("tiny")
        generator = config.generator
        assert generator.ixps is not None
        assert [spec.name for spec in generator.ixps] == \
            [spec.name for spec in hypergiant_era_ixps(0.08)]
        assert generator.num_hypergiants == 8
        assert generator.content_multiplier == 2.5
        assert generator.hypergiant_private_peering_probability == 0.18

    def test_sparse_view_surface_wins_over_profile(self):
        # The small profile says 0.10 vantage fraction; the family's
        # surface (its identity) must override it at every size.
        for size in ("tiny", "small", "medium"):
            config = get_scenario("sparse-view").config(size)
            assert config.vantage_point_fraction == 0.02
            assert config.num_validation_lgs == 8
        rosters = config.generator.ixps
        assert sum(spec.has_rs_lg for spec in rosters) == 1
        assert sum(spec.publishes_member_list for spec in rosters) == 2

    def test_sparse_view_roster_helper(self):
        rosters = sparse_view_ixps(0.10)
        assert len(rosters) == 13
        assert {spec.name for spec in rosters if spec.has_rs_lg} == {"DE-CIX"}

    def test_growth_sweep_ladder_is_monotonic(self):
        growths = [get_scenario(f"growth-sweep-{year}").member_growth
                   for year in GROWTH_SWEEP_YEARS]
        assert growths == sorted(growths)
        assert growths[0] > 1.0

    def test_growth_sweep_scales_member_counts(self):
        base = get_scenario("europe2013").config("tiny")
        grown = get_scenario("growth-sweep-2018").config("tiny")
        assert grown.generator.ixp_member_scale > \
            base.generator.ixp_member_scale

    def test_growth_sweep_pre_baseline_rejected(self):
        with pytest.raises(ValueError, match="2013"):
            growth_sweep_spec(2012)


class TestStageDeclarations:
    def test_default_stage_names_cover_full_pipeline(self):
        names = default_stage_names()
        assert names[0] == "topology"
        assert names[-1] == "analyses"
        graph = stage_graph_for(names)
        assert len(graph) == len(names)

    def test_unknown_stage_rejected(self):
        with pytest.raises(ValueError, match="unknown stages"):
            stage_graph_for(("topology", "quantum"))

    def test_spec_declares_stage_subset(self):
        spec = get_scenario("europe2013").with_overrides(
            name="topology-only", stage_names=("topology", "ixps"))
        graph = spec.stage_graph()
        assert graph.names() == ["topology", "ixps"]

    def test_fingerprints_salted_by_scenario_name(self):
        config = small_scenario_config()
        base = ScenarioRun(config, cache=ArtifactCache())
        salted_spec = get_scenario("europe2013").with_overrides(
            name="europe2013-salted")
        salted = ScenarioRun(config, scenario=salted_spec,
                             cache=ArtifactCache())
        for name, fingerprint in base.fingerprints().items():
            assert salted.fingerprint(name) != fingerprint


class TestFamiliesEndToEnd:
    """Every new family runs end-to-end with caching and sharding."""

    @pytest.fixture(scope="class")
    def family_runs(self):
        """Per-family: (cold sharded run, warm re-run) over one cache."""
        runs = {}
        for name in NEW_FAMILIES:
            cache = ArtifactCache()
            cold = scenario_run("tiny", scenario=name, cache=cache, workers=2)
            cold.analyses()
            warm = scenario_run("tiny", scenario=name, cache=cache)
            warm.analyses()
            runs[name] = (cold, warm)
        return runs

    @pytest.mark.parametrize("name", NEW_FAMILIES)
    def test_cold_run_infers_links(self, family_runs, name):
        cold, _ = family_runs[name]
        result = cold.inference()
        assert len(result.all_links()) > 0
        assert len(result.per_ixp) >= 1
        assert cold.spec.name == name

    @pytest.mark.parametrize("name", NEW_FAMILIES)
    def test_warm_rerun_hits_memory_cache(self, family_runs, name):
        _, warm = family_runs[name]
        assert set(warm.stage_statuses().values()) == {"memory"}

    @pytest.mark.parametrize("name", NEW_FAMILIES)
    def test_sharded_run_matches_single_process(self, family_runs, name):
        cold, _ = family_runs[name]
        single = scenario_run("tiny", scenario=name, cache=ArtifactCache())
        assert cold.inference().all_links() == single.inference().all_links()
        assert cold.inference().links_by_ixp() == \
            single.inference().links_by_ixp()
        assert cold.analyses() == single.analyses()

    def test_families_produce_distinct_ecosystems(self, family_runs):
        link_sets = {name: family_runs[name][0].inference().all_links()
                     for name in NEW_FAMILIES}
        values = list(link_sets.values())
        assert len({frozenset(v) for v in values}) == len(values)

    def test_hypergiant2016_regime_is_content_heavy(self, family_runs):
        cold, _ = family_runs["hypergiant2016"]
        scenario = cold.scenario()
        assert len(scenario.internet.hypergiants) == 8
        assert len(scenario.internet.private_peering_pairs) > 0
        assert len(scenario.ixps) == 6

    def test_sparse_view_regime_is_observation_poor(self, family_runs):
        cold, _ = family_runs["sparse-view"]
        scenario = cold.scenario()
        assert len(scenario.rs_looking_glasses) == 1
        europe = scenario_run("tiny", cache=ArtifactCache())
        assert len(scenario.vantage_points) < \
            len(europe.scenario().vantage_points)
