"""Event timelines and delta replay: semantics, determinism, and the
bit-identity of incremental replay against from-scratch rebuilds."""

import copy
import random

import pytest

from repro.pipeline.run import ScenarioRun
from repro.runtime.delta import fragments_equivalent
from repro.scenarios.events import (
    EVENT_FAMILIES,
    MemberJoin,
    MemberLeave,
    PolicyEdit,
    PrefixChurn,
    ReplayState,
    SessionDown,
    SessionUp,
    TimelineReplay,
    TimelineSpec,
    build_timeline,
    event_family_names,
    rebuild_propagation,
    record_sets,
)
from repro.scenarios.spec import get_scenario, scenario_names
from repro.topology.as_graph import LinkType

PRODUCTION_BACKENDS = ("frontier", "batched", "compiled")


@pytest.fixture(scope="module")
def tiny_baseline():
    """The europe2013 tiny baseline: state + propagation artifact."""
    spec = get_scenario("europe2013-churn")
    run = ScenarioRun(scenario="europe2013-churn", config=spec.config("tiny"))
    prop = run.artifact("propagation")
    scenario = run.scenario()
    record_at, record_alt = record_sets(prop)
    return {
        "spec": spec,
        "run": run,
        "graph": scenario.graph,
        "route_servers": scenario.route_servers,
        "baseline": prop["propagation"],
        "record_at": record_at,
        "record_alt": record_alt,
    }


# ---------------------------------------------------------------------------
# registration and determinism
# ---------------------------------------------------------------------------


def test_event_families_registered():
    assert event_family_names() == ["churn", "failover", "flap-storm"]
    names = scenario_names()
    for family in event_family_names():
        assert f"europe2013-{family}" in names
        spec = get_scenario(f"europe2013-{family}")
        assert spec.timeline == TimelineSpec(family=family, length=8,
                                             seed=20130508)


def test_unknown_event_family_raises(tiny_baseline):
    with pytest.raises(ValueError, match="unknown event family"):
        build_timeline(TimelineSpec(family="nope"),
                       tiny_baseline["graph"],
                       tiny_baseline["route_servers"])


@pytest.mark.parametrize("family", sorted(EVENT_FAMILIES))
def test_build_timeline_is_deterministic(tiny_baseline, family):
    spec = TimelineSpec(family=family, length=8, seed=7)
    first = build_timeline(spec, tiny_baseline["graph"],
                           tiny_baseline["route_servers"])
    second = build_timeline(spec, tiny_baseline["graph"],
                            tiny_baseline["route_servers"])
    assert first == second
    assert len(first) == 8


# ---------------------------------------------------------------------------
# event interpreter semantics
# ---------------------------------------------------------------------------


def test_session_flap_restores_the_exact_link(tiny_baseline):
    graph, route_servers = copy.deepcopy(
        (tiny_baseline["graph"], tiny_baseline["route_servers"]))
    state = ReplayState(graph, route_servers)
    link = sorted(graph.links(LinkType.RS_P2P),
                  key=lambda l: l.endpoints)[0]
    effect = state.apply(SessionDown(link.a, link.b))
    assert effect.removed_links == (link,)
    assert effect.touches_index
    assert graph.get_link(link.a, link.b) is None
    effect = state.apply(SessionUp(link.a, link.b))
    assert effect.added_links == (link,)
    assert graph.get_link(link.a, link.b) == link
    # A second up is a no-op (nothing left in the flap registry).
    assert not state.apply(SessionUp(link.a, link.b)).touches_index


def test_pair_recompute_never_resurrects_a_downed_session(tiny_baseline):
    graph, route_servers = copy.deepcopy(
        (tiny_baseline["graph"], tiny_baseline["route_servers"]))
    state = ReplayState(graph, route_servers)
    ixp = sorted(route_servers)[0]
    route_server = route_servers[ixp]
    members = route_server.members()
    link = next(l for l in sorted(graph.links(LinkType.RS_P2P),
                                  key=lambda l: l.endpoints)
                if l.ixp == ixp and l.a in members and l.b in members)
    state.apply(SessionDown(link.a, link.b))
    # An unrelated policy edit re-derives the member's pairs; the downed
    # session must stay down.
    state.apply(PolicyEdit(ixp=ixp, member=link.a))
    assert graph.get_link(link.a, link.b) is None
    state.apply(SessionUp(link.a, link.b))
    assert graph.get_link(link.a, link.b) == link


def test_prefix_churn_only_dirties_the_origin(tiny_baseline):
    graph, route_servers = copy.deepcopy(
        (tiny_baseline["graph"], tiny_baseline["route_servers"]))
    state = ReplayState(graph, route_servers)
    asn = next(a for a in graph.asns() if graph.get_as(a).prefixes)
    effect = state.apply(PrefixChurn(asn=asn, prefix="198.51.100.0/24"))
    assert not effect.touches_index
    assert effect.dirty_origins == {asn}
    # Announcing the same prefix again is a no-op.
    effect = state.apply(PrefixChurn(asn=asn, prefix="198.51.100.0/24"))
    assert effect.dirty_origins == frozenset()
    effect = state.apply(PrefixChurn(asn=asn, prefix="198.51.100.0/24",
                                     withdraw=True))
    assert effect.dirty_origins == {asn}


# ---------------------------------------------------------------------------
# pipeline integration: fingerprints, stage, caching
# ---------------------------------------------------------------------------


def test_timeline_fingerprint_isolates_the_stage():
    base = ScenarioRun(scenario="europe2013",
                       config=get_scenario("europe2013").config("tiny"))
    spec = get_scenario("europe2013-churn")
    event = ScenarioRun(scenario="europe2013-churn",
                        config=spec.config("tiny"))
    # Upstream stages share fingerprints... they cannot: the scenario
    # name salts every stage.  What must hold: within one scenario, the
    # timeline namespace only feeds the timeline stage.
    flipped = ScenarioRun(
        scenario=spec.with_overrides(
            timeline=TimelineSpec(family="failover", length=8,
                                  seed=20130508)),
        config=spec.config("tiny"))
    for stage in ("topology", "ixps", "propagation"):
        assert event.fingerprint(stage) == flipped.fingerprint(stage)
    assert event.fingerprint("timeline") != flipped.fingerprint("timeline")
    assert base.fingerprint("timeline") != event.fingerprint("timeline")


def test_timeline_stage_is_noop_without_a_timeline():
    run = ScenarioRun(scenario="europe2013",
                      config=get_scenario("europe2013").config("tiny"))
    assert run.spec.timeline is None
    assert run.timeline() is None


def test_timeline_stage_replays_and_reports(tiny_baseline):
    report = tiny_baseline["run"].timeline()
    assert len(report.events) == 8
    assert len(report.reports) == 8
    rows = report.rows()
    assert {"event", "affected", "recomputed", "reused",
            "affected_fraction", "links_changed", "seconds"} \
        <= set(rows[0])
    for event_report in report.reports:
        assert event_report.recomputed + event_report.reused \
            == event_report.total


# ---------------------------------------------------------------------------
# the property: delta replay == from-scratch rebuild, bit for bit
# ---------------------------------------------------------------------------


def random_events(rng, graph, route_servers, length):
    """A randomized mixed event sequence, drawn against evolving state
    (an auxiliary ReplayState keeps successive draws meaningful)."""
    state = ReplayState(*copy.deepcopy((graph, route_servers)))
    roster = sorted(route_servers)
    events = []
    while len(events) < length:
        kind = rng.randrange(6)
        if kind == 0:
            links = sorted(state.graph.links(), key=lambda l: l.endpoints)
            link = links[rng.randrange(len(links))]
            event = SessionDown(link.a, link.b)
        elif kind == 1:
            if not state.down_links:
                continue
            key = sorted(state.down_links)[rng.randrange(
                len(state.down_links))]
            event = SessionUp(*key)
        elif kind == 2:
            ixp = roster[rng.randrange(len(roster))]
            members = state.route_servers[ixp].members()
            if not members:
                continue
            member = members[rng.randrange(len(members))]
            excluded = [m for m in members if m != member][:2]
            event = PolicyEdit(ixp=ixp, member=member,
                               listed=tuple(excluded))
        elif kind == 3:
            ixp = roster[rng.randrange(len(roster))]
            candidates = sorted(
                set(state.graph.members_of_ixp(ixp))
                - state.route_servers[ixp].member_set())
            if not candidates:
                continue
            event = MemberJoin(ixp=ixp,
                               member=candidates[rng.randrange(
                                   len(candidates))])
        elif kind == 4:
            ixp = roster[rng.randrange(len(roster))]
            members = state.route_servers[ixp].members()
            if len(members) <= 2:
                continue
            event = MemberLeave(ixp=ixp,
                                member=members[rng.randrange(len(members))])
        else:
            asns = state.graph.asns()
            asn = asns[rng.randrange(len(asns))]
            event = PrefixChurn(asn=asn,
                                prefix=f"198.18.{len(events)}.0/24",
                                withdraw=rng.random() < 0.3)
        state.apply(event)
        events.append(event)
    return events


def assert_results_identical(mine, theirs, label):
    assert mine.visible_links() == theirs.visible_links(), label
    mine_map = mine.recorded_fragments()
    theirs_map = theirs.recorded_fragments()
    assert list(mine_map) == list(theirs_map), label
    for origin in mine_map:
        assert fragments_equivalent(mine_map[origin], theirs_map[origin]), \
            (label, origin)


@pytest.mark.parametrize("backend", PRODUCTION_BACKENDS)
def test_random_event_sequence_delta_matches_rebuild(tiny_baseline, backend):
    graph = tiny_baseline["graph"]
    route_servers = tiny_baseline["route_servers"]
    record_at = tiny_baseline["record_at"]
    record_alt = tiny_baseline["record_alt"]
    events = random_events(random.Random(20130508 + len(backend)),
                           graph, route_servers, length=6)

    replay = TimelineReplay(graph, route_servers, tiny_baseline["baseline"],
                            record_at, record_alt, backend=backend)
    rebuild_graph, rebuild_servers = copy.deepcopy((graph, route_servers))
    rebuild_state = ReplayState(rebuild_graph, rebuild_servers)
    for index, event in enumerate(events):
        report = replay.apply(event)
        rebuild_state.apply(event)
        _, full = rebuild_propagation(rebuild_graph, rebuild_servers,
                                      record_at, record_alt,
                                      backend=backend)
        assert_results_identical(replay.result, full,
                                 (backend, index, event))
        assert report.recomputed + report.reused == report.total


@pytest.mark.parametrize("family", sorted(EVENT_FAMILIES))
def test_registered_family_delta_matches_rebuild(tiny_baseline, family):
    """Every registered family's full timeline is delta-replayed and
    checked against one final from-scratch rebuild (per-prefix checks
    run in the randomized test above)."""
    graph = tiny_baseline["graph"]
    route_servers = tiny_baseline["route_servers"]
    record_at = tiny_baseline["record_at"]
    record_alt = tiny_baseline["record_alt"]
    events = build_timeline(TimelineSpec(family=family, length=8,
                                         seed=20130508),
                            graph, route_servers)
    replay = TimelineReplay(graph, route_servers, tiny_baseline["baseline"],
                            record_at, record_alt, backend="frontier")
    replay.replay(events)
    rebuild_graph, rebuild_servers = copy.deepcopy((graph, route_servers))
    rebuild_state = ReplayState(rebuild_graph, rebuild_servers)
    for event in events:
        rebuild_state.apply(event)
    _, full = rebuild_propagation(rebuild_graph, rebuild_servers,
                                  record_at, record_alt, backend="frontier")
    assert_results_identical(replay.result, full, family)
