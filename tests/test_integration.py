"""End-to-end integration tests over the assembled scenario."""

import pytest

from repro.analysis.visibility import VisibilityAnalysis
from repro.topology.relationships import LinkType


class TestScenarioAssembly:
    def test_all_substrates_present(self, small_scenario):
        assert len(small_scenario.ixps) == 13
        assert len(small_scenario.route_servers) == 13
        assert small_scenario.rs_looking_glasses            # some IXPs have LGs
        assert small_scenario.third_party_lgs               # others use member LGs
        assert len(small_scenario.collectors) == 2
        assert small_scenario.validation_lgs
        assert len(small_scenario.peeringdb) > 0
        assert len(small_scenario.irr) > 0

    def test_route_server_state_matches_ground_truth(self, small_scenario):
        for name, route_server in small_scenario.route_servers.items():
            truth_members = set(small_scenario.graph.rs_members_of_ixp(name))
            assert set(route_server.members()) == truth_members
            served = route_server.served_pairs()
            truth_pairs = small_scenario.internet.mlp_ground_truth[name]
            # The RS serves at least the ground-truth pairs (per-prefix
            # inconsistencies may add a blocked prefix but not remove pairs).
            assert len(truth_pairs - served) <= max(2, len(truth_pairs) // 100)

    def test_archive_contains_rs_communities(self, small_scenario):
        entries = small_scenario.archive.clean_stable_entries()
        assert entries
        with_rs_communities = [
            entry for entry in entries
            if any(small_scenario.schemes.get(name).is_rs_community(c)
                   for name in small_scenario.schemes.ixp_names()
                   for c in entry.communities)
        ]
        assert with_rs_communities

    def test_lan_prefixes_unique_per_ixp(self, small_scenario):
        lans = [ixp.peering_lan for ixp in small_scenario.ixps.values()]
        assert len(set(lans)) == len(lans)


class TestEndToEndNumbers:
    def test_headline_shape(self, small_scenario, inference_result):
        """The reproduction's qualitative claims, end to end:

        * precision of inferred links is essentially perfect (paper: 98.4%
          of validated links confirmed);
        * the majority of inferred links are invisible in public BGP data
          (paper: 88% invisible);
        * the inferred set is several times larger than the p2p links
          visible in BGP paths (paper: 209% more peering links).
        """
        inferred = set(inference_result.all_links())
        truth = small_scenario.ground_truth_links()
        bgp = small_scenario.public_bgp_links()

        precision = len(inferred & truth) / len(inferred)
        assert precision >= 0.98

        analysis = VisibilityAnalysis(
            mlp_links=inferred, bgp_links=bgp,
            traceroute_links=small_scenario.traceroute_links())
        assert analysis.report.fraction_invisible > 0.5
        assert analysis.report.fraction_visible_in_traceroute < \
            analysis.report.fraction_visible_in_bgp + 0.2

    def test_traceroute_does_not_see_rs_links(self, small_scenario):
        traceroute_links = small_scenario.traceroute_links()
        rs_links = {link.endpoints for link in
                    small_scenario.graph.links(LinkType.RS_P2P)}
        assert not (traceroute_links & rs_links)

    def test_inference_is_deterministic(self, small_scenario):
        first = small_scenario.run_inference()
        second = small_scenario.run_inference()
        assert first.all_links() == second.all_links()

    def test_passive_and_active_complement_each_other(self, small_scenario):
        both = small_scenario.run_inference()
        passive_only = small_scenario.run_inference(use_active=False)
        active_only = small_scenario.run_inference(use_passive=False)
        assert len(both.all_links()) >= len(passive_only.all_links())
        assert len(both.all_links()) >= len(active_only.all_links())
        # Every IXP with a route-server LG should be fully covered actively.
        for name in small_scenario.rs_looking_glasses:
            inference = active_only.per_ixp[name]
            assert inference.num_links > 0
