"""Tests for the querying-cost model of section 4.3."""

import pytest

from repro.bgp.prefix import Prefix
from repro.core.query_cost import QueryCostModel


def prefixes(*names):
    return [Prefix.parse(name) for name in names]


@pytest.fixture
def model():
    announced = {
        1: prefixes("11.0.0.0/24", "11.0.1.0/24", "11.0.2.0/24"),
        2: prefixes("11.0.1.0/24", "11.0.3.0/24"),
        3: prefixes("11.0.1.0/24"),
    }
    return QueryCostModel("DE-CIX", announced, sample_fraction=0.5,
                          max_prefixes_per_member=100)


class TestTargetsAndMultiplicity:
    def test_sampling_target_rounds_up(self, model):
        assert model.sampling_target(1) == 2   # ceil(3 * 0.5)
        assert model.sampling_target(3) == 1
        assert model.sampling_target(99) == 0

    def test_cap_applies(self):
        announced = {1: [Prefix.parse(f"11.{i}.0.0/24") for i in range(50)]}
        model = QueryCostModel("X", announced, sample_fraction=1.0,
                               max_prefixes_per_member=10)
        assert model.sampling_target(1) == 10

    def test_multiplicity(self, model):
        multiplicity = model.prefix_multiplicity()
        assert multiplicity[Prefix.parse("11.0.1.0/24")] == 3
        assert multiplicity[Prefix.parse("11.0.0.0/24")] == 1

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            QueryCostModel("X", {}, sample_fraction=0)
        with pytest.raises(ValueError):
            QueryCostModel("X", {}, max_prefixes_per_member=0)


class TestPlanning:
    def test_plan_covers_all_targets(self, model):
        plan = model.build_plan()
        for asn, target in plan.targets.items():
            assert plan.covered[asn] >= target

    def test_shared_prefix_queried_once(self, model):
        plan = model.build_plan()
        # The shared prefix 11.0.1.0/24 satisfies members 2 and 3 (and part
        # of member 1) with a single query.
        assert plan.prefix_queries.count(Prefix.parse("11.0.1.0/24")) == 1
        assert plan.num_prefix_queries < sum(plan.targets.values())

    def test_skip_members(self, model):
        plan = model.build_plan(skip_members={1})
        assert 1 not in plan.targets
        assert 1 in plan.skipped_members

    def test_covered_prefixes_reduce_queries(self, model):
        full_plan = model.build_plan()
        reduced = model.build_plan(covered_prefixes={
            2: prefixes("11.0.1.0/24"), 3: prefixes("11.0.1.0/24")})
        assert reduced.num_prefix_queries <= full_plan.num_prefix_queries

    def test_total_cost_formula(self, model):
        plan = model.build_plan()
        assert plan.total_cost(3) == 1 + 3 + plan.num_prefix_queries


class TestEquation2EdgeCases:
    """Edge cases of the equation-2 cost model: the 100-prefix cap,
    members fully covered passively, and shared-prefix tie handling."""

    def test_default_cap_limits_sampling_target(self):
        announced = {1: [Prefix.from_octets(10, i // 256, i % 256, 0, 24)
                         for i in range(2000)]}
        model = QueryCostModel("DE-CIX", announced)   # defaults: 10%, cap 100
        # ceil(2000 * 0.10) = 200, capped at 100.
        assert model.sampling_target(1) == 100
        plan = model.build_plan()
        assert plan.targets[1] == 100
        assert plan.num_prefix_queries == 100

    def test_cap_not_reached_below_threshold(self):
        announced = {1: [Prefix.from_octets(10, 0, i, 0, 24)
                         for i in range(200)]}
        model = QueryCostModel("DE-CIX", announced)
        assert model.sampling_target(1) == 20      # 10% of 200, under the cap

    def test_all_members_covered_passively_costs_one_query(self, model):
        members = set(model.announced_prefixes)
        plan = model.build_plan(skip_members=members)
        assert plan.num_prefix_queries == 0
        assert plan.targets == {} and plan.covered == {}
        assert plan.skipped_members == members
        # Equation 2 with ARS == ARS_passive: only the summary query is left.
        assert plan.total_cost(0) == 1
        breakdown = model.cost_breakdown(passive_members=members)
        assert breakdown.with_passive == 1

    def test_passive_prefix_coverage_eliminates_active_queries(self):
        shared = prefixes("11.0.0.0/24")[0]
        announced = {1: [shared], 2: [shared]}
        model = QueryCostModel("X", announced, sample_fraction=1.0)
        plan = model.build_plan(covered_prefixes={1: [shared], 2: [shared]})
        # Every member's target is already met by passive data: zero
        # active prefix queries, but the members are not "skipped".
        assert plan.num_prefix_queries == 0
        assert plan.covered == {1: 1, 2: 1}
        assert plan.skipped_members == set()

    def test_shared_prefix_tie_broken_deterministically(self):
        low = Prefix.parse("10.0.0.0/24")
        high = Prefix.parse("11.0.0.0/24")
        # Both prefixes are announced by both members: equal multiplicity.
        announced = {1: [high, low], 2: [low, high]}
        model = QueryCostModel("X", announced, sample_fraction=0.5)
        plan = model.build_plan()
        # One query satisfies both members' single-prefix targets, and the
        # tie between equally shared prefixes goes to the smaller prefix.
        assert plan.prefix_queries == [low]
        assert plan.covered == {1: 1, 2: 1}
        for _ in range(3):
            assert model.build_plan().prefix_queries == [low]

    def test_tie_between_members_does_not_double_query(self):
        shared = Prefix.parse("11.0.1.0/24")
        own_1 = Prefix.parse("11.0.2.0/24")
        own_2 = Prefix.parse("11.0.3.0/24")
        announced = {1: [shared, own_1], 2: [shared, own_2]}
        model = QueryCostModel("X", announced, sample_fraction=0.5)
        plan = model.build_plan()
        # The shared prefix (multiplicity 2) is preferred over either
        # member-private prefix and queried exactly once.
        assert plan.prefix_queries == [shared]


class TestCostBreakdown:
    def test_ordering_of_strategies(self, model):
        breakdown = model.cost_breakdown(passive_members={1})
        assert breakdown.exhaustive >= breakdown.sampled >= breakdown.optimised
        assert breakdown.with_passive <= breakdown.optimised
        assert breakdown.exhaustive_over_optimised >= 1.0

    def test_breakdown_on_larger_population(self, small_scenario):
        """The optimisation should save a substantial factor on a real
        route server (the paper reports 18x for DE-CIX)."""
        rs = small_scenario.route_servers["DE-CIX"]
        announced = {asn: rs.announced_prefixes(asn) for asn in rs.members()}
        model = QueryCostModel("DE-CIX", announced)
        breakdown = model.cost_breakdown()
        assert breakdown.exhaustive_over_optimised > 1.5

    def test_measurement_duration(self):
        assert QueryCostModel.measurement_duration(6, 10, parallel_ixps=2) == 30
        with pytest.raises(ValueError):
            QueryCostModel.measurement_duration(6, 10, parallel_ixps=0)
