"""Tests for the querying-cost model of section 4.3."""

import pytest

from repro.bgp.prefix import Prefix
from repro.core.query_cost import QueryCostModel


def prefixes(*names):
    return [Prefix.parse(name) for name in names]


@pytest.fixture
def model():
    announced = {
        1: prefixes("11.0.0.0/24", "11.0.1.0/24", "11.0.2.0/24"),
        2: prefixes("11.0.1.0/24", "11.0.3.0/24"),
        3: prefixes("11.0.1.0/24"),
    }
    return QueryCostModel("DE-CIX", announced, sample_fraction=0.5,
                          max_prefixes_per_member=100)


class TestTargetsAndMultiplicity:
    def test_sampling_target_rounds_up(self, model):
        assert model.sampling_target(1) == 2   # ceil(3 * 0.5)
        assert model.sampling_target(3) == 1
        assert model.sampling_target(99) == 0

    def test_cap_applies(self):
        announced = {1: [Prefix.parse(f"11.{i}.0.0/24") for i in range(50)]}
        model = QueryCostModel("X", announced, sample_fraction=1.0,
                               max_prefixes_per_member=10)
        assert model.sampling_target(1) == 10

    def test_multiplicity(self, model):
        multiplicity = model.prefix_multiplicity()
        assert multiplicity[Prefix.parse("11.0.1.0/24")] == 3
        assert multiplicity[Prefix.parse("11.0.0.0/24")] == 1

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            QueryCostModel("X", {}, sample_fraction=0)
        with pytest.raises(ValueError):
            QueryCostModel("X", {}, max_prefixes_per_member=0)


class TestPlanning:
    def test_plan_covers_all_targets(self, model):
        plan = model.build_plan()
        for asn, target in plan.targets.items():
            assert plan.covered[asn] >= target

    def test_shared_prefix_queried_once(self, model):
        plan = model.build_plan()
        # The shared prefix 11.0.1.0/24 satisfies members 2 and 3 (and part
        # of member 1) with a single query.
        assert plan.prefix_queries.count(Prefix.parse("11.0.1.0/24")) == 1
        assert plan.num_prefix_queries < sum(plan.targets.values())

    def test_skip_members(self, model):
        plan = model.build_plan(skip_members={1})
        assert 1 not in plan.targets
        assert 1 in plan.skipped_members

    def test_covered_prefixes_reduce_queries(self, model):
        full_plan = model.build_plan()
        reduced = model.build_plan(covered_prefixes={
            2: prefixes("11.0.1.0/24"), 3: prefixes("11.0.1.0/24")})
        assert reduced.num_prefix_queries <= full_plan.num_prefix_queries

    def test_total_cost_formula(self, model):
        plan = model.build_plan()
        assert plan.total_cost(3) == 1 + 3 + plan.num_prefix_queries


class TestCostBreakdown:
    def test_ordering_of_strategies(self, model):
        breakdown = model.cost_breakdown(passive_members={1})
        assert breakdown.exhaustive >= breakdown.sampled >= breakdown.optimised
        assert breakdown.with_passive <= breakdown.optimised
        assert breakdown.exhaustive_over_optimised >= 1.0

    def test_breakdown_on_larger_population(self, small_scenario):
        """The optimisation should save a substantial factor on a real
        route server (the paper reports 18x for DE-CIX)."""
        rs = small_scenario.route_servers["DE-CIX"]
        announced = {asn: rs.announced_prefixes(asn) for asn in rs.members()}
        model = QueryCostModel("DE-CIX", announced)
        breakdown = model.cost_breakdown()
        assert breakdown.exhaustive_over_optimised > 1.5

    def test_measurement_duration(self):
        assert QueryCostModel.measurement_duration(6, 10, parallel_ixps=2) == 30
        with pytest.raises(ValueError):
            QueryCostModel.measurement_duration(6, 10, parallel_ixps=0)
