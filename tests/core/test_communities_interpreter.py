"""Tests for RS community interpretation and IXP identification."""

import pytest

from repro.bgp.asn import Private16BitMapper
from repro.bgp.communities import Community
from repro.core.communities import RSCommunityInterpreter
from repro.ixp.community_schemes import CommunityScheme, SchemeRegistry


@pytest.fixture
def interpreter():
    registry = SchemeRegistry([
        CommunityScheme.rs_asn_style("DE-CIX", 6695),
        CommunityScheme.zero_exclude_style("MSK-IX", 8631),
        CommunityScheme.offset_style("ECIX", 9033),
    ])
    members = {
        "DE-CIX": {100, 200, 300, 8359, 8447},
        "MSK-IX": {100, 500, 600},
        "ECIX": {700, 800},
    }
    return RSCommunityInterpreter(registry, members)


class TestInterpretation:
    def test_all_exclude_interpretation(self, interpreter):
        policy = interpreter.interpret_for_ixp(
            "DE-CIX", [Community(6695, 6695), Community(0, 200)])
        assert policy.mode == "all-except"
        assert policy.listed == frozenset({200})
        assert policy.allows(300) and not policy.allows(200)

    def test_none_include_interpretation(self, interpreter):
        policy = interpreter.interpret_for_ixp(
            "DE-CIX", [Community(0, 6695), Community(6695, 8359)])
        assert policy.mode == "none-except"
        assert policy.allows(8359) and not policy.allows(8447)

    def test_none_wins_over_all(self, interpreter):
        policy = interpreter.interpret_for_ixp(
            "DE-CIX", [Community(6695, 6695), Community(0, 6695),
                       Community(6695, 100)])
        assert policy.mode == "none-except"

    def test_unrelated_communities_ignored(self, interpreter):
        assert interpreter.interpret_for_ixp("ECIX", [Community(3356, 1)]) is None

    def test_unresolved_peer_recorded(self, interpreter):
        policy = interpreter.interpret_for_ixp(
            "DE-CIX", [Community(6695, 6695), Community(0, 9999)])
        assert 9999 in policy.unresolved

    def test_32bit_alias_resolved_through_mapper(self):
        registry = SchemeRegistry([CommunityScheme.rs_asn_style("DE-CIX", 6695)])
        mapper = Private16BitMapper()
        alias = mapper.register(200000)
        interpreter = RSCommunityInterpreter(
            registry, {"DE-CIX": {100, 200000}}, mappers={"DE-CIX": mapper})
        policy = interpreter.interpret_for_ixp(
            "DE-CIX", [Community(6695, 6695), Community(0, alias)])
        assert 200000 in policy.listed


class TestIXPIdentification:
    def test_rs_asn_match_identifies_ixp(self, interpreter):
        identification = interpreter.identify_unique_ixp(
            [Community(6695, 6695), Community(0, 200)])
        assert identification.ixp_name == "DE-CIX"
        assert identification.rs_asn_match

    def test_bare_excludes_disambiguated_by_membership(self, interpreter):
        # 0:500 and 0:600 are EXCLUDEs valid under both DE-CIX and MSK-IX
        # grammars, but only MSK-IX has both 500 and 600 as members.
        identification = interpreter.identify_unique_ixp(
            [Community(0, 500), Community(0, 600)])
        assert identification is not None
        assert identification.ixp_name == "MSK-IX"
        assert not identification.rs_asn_match

    def test_truly_ambiguous_returns_none(self, interpreter):
        # AS100 is a member of both DE-CIX and MSK-IX: a bare 0:100 could
        # belong to either, so the conservative answer is None.
        assert interpreter.identify_unique_ixp([Community(0, 100)]) is None

    def test_no_rs_communities_returns_nothing(self, interpreter):
        assert interpreter.identify_ixps([Community(3356, 64)]) == []
        assert interpreter.identify_unique_ixp([]) is None

    def test_rs_communities_only_filter(self, interpreter):
        communities = [Community(6695, 6695), Community(3356, 7)]
        filtered = interpreter.rs_communities_only("DE-CIX", communities)
        assert filtered == frozenset({Community(6695, 6695)})
