"""Tests for active (LG-driven) and passive (collector-driven) inference."""

import pytest

from repro.bgp.attributes import ASPath
from repro.bgp.communities import Community
from repro.bgp.messages import RibEntry
from repro.bgp.policy import Relationship
from repro.bgp.prefix import Prefix
from repro.core.active import ActiveInference, collect_from_third_party_lg
from repro.core.communities import RSCommunityInterpreter
from repro.core.passive import PassiveInference
from repro.core.reachability import infer_links, merge_observations
from repro.ixp.community_schemes import CommunityScheme, SchemeRegistry
from repro.ixp.looking_glass import ASLookingGlass, RouteServerLookingGlass
from repro.ixp.member import MemberExportPolicy
from repro.ixp.route_server import RouteServer


@pytest.fixture
def decix_world():
    """A small DE-CIX with four members (the figure 3 topology)."""
    scheme = CommunityScheme.rs_asn_style("DE-CIX", 6695)
    registry = SchemeRegistry([scheme])
    rs = RouteServer("DE-CIX", 6695, scheme)
    a, b, c, d = 101, 102, 103, 104
    rs.add_member(a, MemberExportPolicy.all_except(a, "DE-CIX", {c}))
    rs.add_member(b, MemberExportPolicy.announce_to_all(b, "DE-CIX"))
    rs.add_member(c, MemberExportPolicy.announce_to_all(c, "DE-CIX"))
    rs.add_member(d, MemberExportPolicy.announce_to_all(d, "DE-CIX"))
    for index, asn in enumerate((a, b, c, d)):
        rs.announce(asn, Prefix.parse(f"11.0.{index}.0/24"))
        rs.announce(asn, Prefix.parse(f"11.1.{index}.0/24"))
    interpreter = RSCommunityInterpreter(registry, {"DE-CIX": {a, b, c, d}},
                                         mappers={"DE-CIX": rs.mapper})
    return rs, registry, interpreter, (a, b, c, d)


class TestActiveInference:
    def test_steps_1_to_3_collect_everything(self, decix_world):
        rs, registry, interpreter, (a, b, c, d) = decix_world
        lg = RouteServerLookingGlass(rs)
        collection = ActiveInference(lg, sample_fraction=0.5).collect()
        assert collection.members == {a, b, c, d}
        assert set(collection.announced_prefixes) == {a, b, c, d}
        assert collection.members_with_communities() == {a, b, c, d}
        assert collection.total_queries == lg.counter.total
        assert collection.plan is not None

    def test_full_pipeline_reproduces_figure3(self, decix_world):
        rs, registry, interpreter, (a, b, c, d) = decix_world
        lg = RouteServerLookingGlass(rs)
        collection = ActiveInference(lg).collect()
        observations = collection.policy_observations(interpreter)
        members = collection.members
        reach = {}
        for asn in members:
            merged = merge_observations(
                [o for o in observations if o.member_asn == asn], members)
            if merged:
                reach[asn] = merged
        links = infer_links(reach, members)
        assert (a, c) not in links
        assert len(links) == 5

    def test_skip_members_are_not_queried(self, decix_world):
        rs, registry, interpreter, (a, b, c, d) = decix_world
        lg = RouteServerLookingGlass(rs)
        collection = ActiveInference(lg).collect(skip_members={a, b})
        assert a not in collection.announced_prefixes
        assert a not in collection.members_with_communities()
        # Membership (step 1) still includes the skipped ASes.
        assert collection.members == {a, b, c, d}


class TestThirdPartyLG:
    def test_member_lg_exposes_partial_communities(self, decix_world):
        rs, registry, interpreter, (a, b, c, d) = decix_world
        lg = ASLookingGlass(asn=d)
        lg.load_route_server_exports(rs)
        collection = collect_from_third_party_lg(
            "DE-CIX", lg, [a, b, c, d], interpreter)
        assert collection.lg_asn == d
        # d receives routes from a, b and c, so it sees their communities.
        assert collection.members_with_communities() == {a, b, c}
        observations = collection.policy_observations(interpreter)
        a_observations = [o for o in observations if o.member_asn == a]
        assert all(o.mode == "all-except" and c in o.listed
                   for o in a_observations)

    def test_blocked_member_invisible_to_third_party(self, decix_world):
        rs, registry, interpreter, (a, b, c, d) = decix_world
        # c's LG never sees a's routes because a excludes c.
        lg = ASLookingGlass(asn=c)
        lg.load_route_server_exports(rs)
        collection = collect_from_third_party_lg(
            "DE-CIX", lg, [a, b, c, d], interpreter)
        assert a not in collection.members_with_communities()


class TestPassiveInference:
    def entry(self, path, communities, prefix="11.0.0.0/24", peer=None):
        return RibEntry(peer_asn=peer if peer is not None else path[0],
                        prefix=Prefix.parse(prefix),
                        as_path=ASPath(path),
                        communities=frozenset(communities))

    def test_figure4_setter_identification_two_participants(self, decix_world):
        rs, registry, interpreter, (a, b, c, d) = decix_world
        passive = PassiveInference(interpreter)
        # Path E D A where D and A are members; A tagged NONE+INCLUDE(B, D).
        e = 999
        entry = self.entry([e, d, a],
                           [Community(0, 6695), Community(6695, b),
                            Community(6695, d)])
        observations = passive.extract([entry])
        assert len(observations) == 1
        assert observations[0].setter_asn == a
        assert observations[0].ixp_name == "DE-CIX"

    def test_three_participants_use_relationships(self, decix_world):
        rs, registry, interpreter, (a, b, c, d) = decix_world
        e = 999
        relationships = {
            (e, d): Relationship.PROVIDER,   # e sees d as provider (e customer)
            (d, a): Relationship.RS_PEER,
        }
        passive = PassiveInference(interpreter, relationships)
        entry = self.entry([e, d, a], [Community(6695, 6695)], peer=e)
        # Make e a member too so three participants appear on the path.
        interpreter.rs_members["DE-CIX"].add(e)
        observations = passive.extract([entry])
        interpreter.rs_members["DE-CIX"].discard(e)
        assert len(observations) == 1
        assert observations[0].setter_asn == a

    def test_single_participant_cannot_pinpoint(self, decix_world):
        rs, registry, interpreter, (a, b, c, d) = decix_world
        passive = PassiveInference(interpreter)
        entry = self.entry([999, 888, a], [Community(6695, 6695)])
        assert passive.extract([entry]) == []
        assert passive.stats.entries_without_setter == 1

    def test_dirty_and_communityless_entries_skipped(self, decix_world):
        rs, registry, interpreter, (a, b, c, d) = decix_world
        passive = PassiveInference(interpreter)
        dirty = self.entry([999, 23456, a], [Community(6695, 6695)])
        plain = self.entry([999, d, a], [])
        foreign = self.entry([999, d, a], [Community(3356, 1)])
        assert passive.extract([dirty, plain, foreign]) == []
        assert passive.stats.entries_dirty == 1
        assert passive.stats.entries_without_rs_communities == 2

    def test_covered_members_and_prefixes(self, decix_world):
        rs, registry, interpreter, (a, b, c, d) = decix_world
        passive = PassiveInference(interpreter)
        entries = [
            self.entry([999, d, a], [Community(6695, 6695)], "11.0.0.0/24"),
            self.entry([999, d, b], [Community(6695, 6695)], "11.0.1.0/24"),
        ]
        observations = passive.extract(entries)
        covered = passive.covered_members(observations)
        assert covered["DE-CIX"] == {a, b}
        prefixes = passive.covered_prefixes(observations)
        assert Prefix.parse("11.0.0.0/24") in prefixes["DE-CIX"][a]

    def test_policy_observations_conversion(self, decix_world):
        rs, registry, interpreter, (a, b, c, d) = decix_world
        passive = PassiveInference(interpreter)
        entry = self.entry([999, d, a],
                           [Community(6695, 6695), Community(0, c)])
        observations = passive.extract([entry])
        policies = passive.policy_observations(observations)
        assert policies[0].mode == "all-except"
        assert c in policies[0].listed
        assert policies[0].source == "passive"
