"""Differential harness: bitset inference backend vs the object engine.

Every registered scenario (at tiny size) and randomized europe2013
regimes (generator-knob strategy mirroring
``tests/runtime/test_batched.py``) must produce **bit-identical**
inference under both backends: links, per-IXP link sets, Table 2 rows,
reachability objects (mode / listed / provenance / prefix counts) and
active query spend.  The pipeline layer must fingerprint the two
backends apart (no artifact aliasing) while sharing every upstream
stage, and the derived-view caches of the result object must not
re-sort on repeated access.
"""

from __future__ import annotations

import random

import pytest

from repro.pipeline import ArtifactCache, ScenarioRun
from repro.runtime.context import INFERENCE_BACKENDS, PipelineContext
from repro.runtime.snapshot import restore_context, snapshot_context
from repro.scenarios.base import ScenarioConfig
from repro.scenarios.spec import get_scenario, scenario_names
from repro.scenarios.workloads import scenario_run
from repro.topology.generator import GeneratorConfig


def assert_bit_identical(obj, bit):
    """Full-result equivalence: links, Table 2, provenance, queries.

    The granular asserts localise a failure; the final
    ``identical_to`` call is the authoritative shared predicate (the
    same one the benches and ``run_all.py`` gate on), so this helper
    can never check less than the benchmark gates do.
    """
    assert obj.all_links() == bit.all_links()
    assert obj.links_by_ixp() == bit.links_by_ixp()
    assert obj.multi_ixp_links() == bit.multi_ixp_links()
    assert obj.table2() == bit.table2()
    assert obj.link_ixps() == bit.link_ixps()
    for name in obj.per_ixp:
        left, right = obj.per_ixp[name], bit.per_ixp[name]
        assert left.members == right.members, name
        assert left.passive_members == right.passive_members, name
        assert left.active_members == right.active_members, name
        assert left.active_queries == right.active_queries, name
        assert left.covered_members() == right.covered_members(), name
        assert left.reachabilities == right.reachabilities, name
    assert obj.identical_to(bit)


# -- all registered scenarios --------------------------------------------------


@pytest.mark.parametrize("name", scenario_names())
def test_backends_identical_on_registered_scenarios(name):
    """Object and bitset inference agree on every registered family at
    tiny size (shared cache: upstream stages are computed once)."""
    cache = ArtifactCache()
    obj = scenario_run("tiny", scenario=name, cache=cache,
                       inference_backend="object").inference()
    bit = scenario_run("tiny", scenario=name, cache=cache,
                       inference_backend="bitset").inference()
    assert_bit_identical(obj, bit)


# -- randomized regimes (generator-knob strategy) ------------------------------


def _random_scenario_config(rng: random.Random) -> ScenarioConfig:
    """A seeded random regime: phase selection plus hypergiant /
    private-peering / bilateral knobs (the strategy of
    ``tests/runtime/test_batched.py``), wrapped in a ScenarioConfig."""
    from repro.topology.phases import DEFAULT_PHASE_ORDER
    phases = list(DEFAULT_PHASE_ORDER)
    for optional in ("sibling-links", "backbone-peering", "private-peering"):
        if rng.random() < 0.35:
            phases.remove(optional)
    low = rng.randint(1, 3)
    generator = GeneratorConfig(
        seed=rng.randrange(1 << 30),
        scale=rng.uniform(0.05, 0.09),
        ixp_member_scale=rng.uniform(0.04, 0.08),
        sibling_pair_fraction=rng.choice([0.0, 0.01, 0.05]),
        num_hypergiants=rng.randint(2, 5),
        hypergiant_ixp_presence=rng.uniform(0.3, 1.0),
        hypergiant_private_peering_probability=rng.uniform(0.0, 0.15),
        bilateral_peer_range=(low, low + rng.randint(0, 5)),
        content_multiplier=rng.choice([0.8, 1.0, 1.6]),
        phases=tuple(phases),
    )
    return ScenarioConfig(
        generator=generator,
        seed=rng.randrange(1 << 30),
        vantage_point_fraction=rng.uniform(0.04, 0.12),
        # Far above the paper's <0.5% so the mixed-policy merge
        # fallback (the inconsistency tail) is exercised every seed.
        inconsistent_member_fraction=rng.choice([0.2, 0.5]),
        num_validation_lgs=rng.randint(5, 15),
        num_traceroute_monitors=rng.randint(4, 10),
    )


@pytest.mark.parametrize("seed", [2013, 4242, 77])
def test_backends_identical_on_random_regimes(seed):
    """Property-based differential: randomized generator/measurement
    knobs (including an aggressive inconsistent-member fraction, which
    exercises the mixed-policy merge fallback) produce bit-identical
    inference under both backends — including the reciprocity ablation.
    """
    rng = random.Random(seed)
    config = _random_scenario_config(rng)
    cache = ArtifactCache()
    runs = {backend: ScenarioRun(config, cache=cache,
                                 inference_backend=backend)
            for backend in INFERENCE_BACKENDS}
    assert_bit_identical(runs["object"].inference(),
                         runs["bitset"].inference())

    scenario = runs["object"].scenario()
    ablation_obj = scenario.run_inference(require_reciprocity=False,
                                          inference_backend="object")
    ablation_bit = scenario.run_inference(require_reciprocity=False,
                                          inference_backend="bitset")
    assert ablation_obj.all_links() == ablation_bit.all_links()
    assert ablation_obj.links_by_ixp() == ablation_bit.links_by_ixp()


def test_backends_identical_without_passive_or_active():
    """The use_passive / use_active ablations agree across backends."""
    run = scenario_run("tiny", cache=ArtifactCache())
    scenario = run.scenario()
    for kwargs in ({"use_passive": False}, {"use_active": False}):
        obj = scenario.run_inference(inference_backend="object", **kwargs)
        bit = scenario.run_inference(inference_backend="bitset", **kwargs)
        assert_bit_identical(obj, bit)


def test_bitset_backend_with_workers_matches():
    """workers is accepted by the bitset path (plane runs in-process)
    and the result still matches the sharded object path."""
    run = scenario_run("tiny", cache=ArtifactCache())
    scenario = run.scenario()
    obj = scenario.run_inference(workers=2, inference_backend="object")
    bit = scenario.run_inference(workers=2, inference_backend="bitset")
    assert_bit_identical(obj, bit)


# -- pipeline fingerprinting ---------------------------------------------------


def test_inference_fingerprints_salted_per_backend():
    """Inference-stage artifacts never alias across backends while every
    upstream stage (topology .. connectivity) is shared."""
    cache = ArtifactCache()
    config = get_scenario("europe2013").config("tiny")
    obj_run = ScenarioRun(config, cache=cache, inference_backend="object")
    bit_run = ScenarioRun(config, cache=cache, inference_backend="bitset")

    upstream = ("topology", "ixps", "propagation", "collectors",
                "viewpoints", "registries", "scenario", "connectivity")
    for stage in upstream:
        assert obj_run.fingerprint(stage) == bit_run.fingerprint(stage), stage
    for stage in ("inference", "reachability", "analyses"):
        assert obj_run.fingerprint(stage) != bit_run.fingerprint(stage), stage

    obj_run.inference()
    bit_run.inference()
    statuses = bit_run.stage_statuses()
    assert statuses["inference"] == "computed"
    assert all(statuses[stage] == "memory" for stage in
               ("scenario", "connectivity"))

    # A third run under the object backend hits the object artifact.
    warm = ScenarioRun(config, cache=cache, inference_backend="object")
    warm.inference()
    assert warm.stage_statuses()["inference"] == "memory"


def test_unknown_inference_backend_rejected():
    with pytest.raises(ValueError, match="unknown inference backend"):
        ScenarioRun(get_scenario("europe2013").config("tiny"),
                    inference_backend="abacus")
    from repro.bgp.policy import Relationship
    from repro.bgp.propagation import Adjacency
    adjacencies = [Adjacency(1, 2, Relationship.PEER),
                   Adjacency(2, 1, Relationship.PEER)]
    with pytest.raises(ValueError, match="unknown inference backend"):
        PipelineContext.from_adjacencies(adjacencies,
                                         inference_backend="abacus")


def test_spec_pin_selects_inference_backend():
    spec = get_scenario("europe2013").with_overrides(
        name="europe2013-bitset-pin", inference_backend="bitset")
    run = ScenarioRun(spec.config("tiny"), scenario=spec)
    assert run.inference_backend == "bitset"


def test_snapshot_carries_inference_backend():
    from repro.bgp.policy import Relationship
    from repro.bgp.propagation import Adjacency
    adjacencies = [Adjacency(1, 2, Relationship.PEER),
                   Adjacency(2, 1, Relationship.PEER)]
    context = PipelineContext.from_adjacencies(
        adjacencies, inference_backend="bitset")
    restored = restore_context(snapshot_context(context))
    assert restored.inference_backend == "bitset"


# -- context-level plane cache -------------------------------------------------


def test_bitset_planes_cached_on_context():
    """Repeated bitset runs on one scenario reuse the observation
    planes; ablation keys (use_passive off) add a separate entry."""
    run = scenario_run("tiny", cache=ArtifactCache(),
                       inference_backend="bitset")
    scenario = run.scenario()
    context = scenario.context
    first = scenario.run_inference(inference_backend="bitset")
    entries_after_first = context.stats()["inference_plane_entries"]
    second = scenario.run_inference(inference_backend="bitset")
    assert context.stats()["inference_plane_entries"] == entries_after_first
    assert_bit_identical(first, second)
    # The reciprocity ablation shares the planes (applied downstream).
    scenario.run_inference(require_reciprocity=False,
                           inference_backend="bitset")
    assert context.stats()["inference_plane_entries"] == entries_after_first
    # A different collection surface is a different key.
    scenario.run_inference(use_passive=False, inference_backend="bitset")
    assert context.stats()["inference_plane_entries"] == entries_after_first + 1


def test_plane_cache_invalidated_by_lg_view_change():
    """Mutating route-server state visible through a looking glass
    between runs must not serve stale cached planes: the LG view
    signature in the cache key forces a recollection (a new cache
    entry), keeping the bitset backend identical to the re-querying
    object backend."""
    from repro.bgp.prefix import Prefix

    run = scenario_run("tiny", cache=ArtifactCache())
    scenario = run.scenario()
    context = scenario.context
    first = scenario.run_inference(inference_backend="bitset")
    assert first.identical_to(scenario.run_inference(
        inference_backend="object"))
    entries_before = context.stats()["inference_plane_entries"]

    ixp_name = sorted(scenario.rs_looking_glasses)[0]
    route_server = scenario.route_servers[ixp_name]
    member = route_server.members()[0]
    route_server.announce(member, Prefix.from_octets(203, 0, 113, 0, 24),
                          (member,))

    obj = scenario.run_inference(inference_backend="object")
    bit = scenario.run_inference(inference_backend="bitset")
    # The mutated LG view is a different cache key -> fresh collection.
    assert context.stats()["inference_plane_entries"] == entries_before + 1
    assert obj.identical_to(bit)


def test_table2_fallback_without_table2_figure():
    """ScenarioRun.table2() must work when the analysis suite omits the
    table2 figure (the fallback path feeds the reachability matrix to
    the figure function directly)."""
    from repro.pipeline import AnalysisOptions

    base = scenario_run("tiny", cache=ArtifactCache())
    run = ScenarioRun(base.config, scenario=base.spec, cache=base.cache,
                      analysis_options=AnalysisOptions(figures=("density",)))
    rows = run.table2()
    assert len(rows) == len(run.inference().per_ixp)


# -- derived-view caches (regression: repeated calls must not re-sort) ---------


def test_result_views_are_memoised():
    result = scenario_run("tiny", cache=ArtifactCache()).inference()
    assert result.all_links() is result.all_links()
    assert result.multi_ixp_links() is result.multi_ixp_links()
    assert result.link_ixps() is result.link_ixps()
    assert result.peer_counts() is result.peer_counts()
    assert result.all_member_asns() is result.all_member_asns()
    some_ixp = next(iter(result.per_ixp.values()))
    assert some_ixp.link_set() is some_ixp.link_set()
    if some_ixp.links:
        a, b = some_ixp.links[0]
        assert some_ixp.has_link(a, b) and some_ixp.has_link(b, a)
        assert result.ixps_of_link(a, b)
        assert some_ixp.ixp_name in result.ixps_of_link(a, b)
    covered = some_ixp.covered_members()
    if covered:
        assert some_ixp.provenance_of(covered[0])
