"""Tests for reachability reconstruction (N_a) and link inference (step 5)."""

import pytest

from repro.bgp.prefix import Prefix
from repro.core.reachability import (
    MemberReachability,
    PolicyObservation,
    infer_links,
    merge_observations,
)

MEMBERS = [10, 20, 30, 40]


def obs(member, mode, listed, prefix="11.0.0.0/24", source="active"):
    return PolicyObservation(member_asn=member, ixp_name="X",
                             prefix=Prefix.parse(prefix), mode=mode,
                             listed=frozenset(listed), source=source)


class TestPolicyObservation:
    def test_allowed_all_except(self):
        assert obs(10, "all-except", {20}).allowed(MEMBERS) == {30, 40}

    def test_allowed_none_except(self):
        assert obs(10, "none-except", {20}).allowed(MEMBERS) == {20}


class TestMergeObservations:
    def test_empty_returns_none(self):
        assert merge_observations([], MEMBERS) is None

    def test_single_observation(self):
        merged = merge_observations([obs(10, "all-except", {20})], MEMBERS)
        assert merged.mode == "all-except"
        assert merged.allows(30) and not merged.allows(20)
        assert merged.is_consistent

    def test_consistent_observations_stay_consistent(self):
        merged = merge_observations(
            [obs(10, "all-except", {20}, "11.0.0.0/24"),
             obs(10, "all-except", {20}, "11.0.1.0/24")], MEMBERS)
        assert merged.is_consistent
        assert merged.prefixes_observed == 2

    def test_inconsistent_all_except_unions_excludes(self):
        merged = merge_observations(
            [obs(10, "all-except", {20}, "11.0.0.0/24"),
             obs(10, "all-except", {30}, "11.0.1.0/24")], MEMBERS)
        assert not merged.is_consistent
        assert not merged.allows(20) and not merged.allows(30)
        assert merged.allows(40)

    def test_inconsistent_none_except_intersects_includes(self):
        merged = merge_observations(
            [obs(10, "none-except", {20, 30}, "11.0.0.0/24"),
             obs(10, "none-except", {30, 40}, "11.0.1.0/24")], MEMBERS)
        assert merged.allows(30)
        assert not merged.allows(20) and not merged.allows(40)

    def test_mixed_modes_intersect_against_members(self):
        merged = merge_observations(
            [obs(10, "all-except", {20}, "11.0.0.0/24"),
             obs(10, "none-except", {30, 20}, "11.0.1.0/24")], MEMBERS)
        # First allows {30, 40}; second allows {20, 30}; intersection {30}.
        assert merged.allowed_members(MEMBERS) == {30}

    def test_mismatched_members_rejected(self):
        with pytest.raises(ValueError):
            merge_observations([obs(10, "all-except", set()),
                                obs(11, "all-except", set())], MEMBERS)

    def test_sources_recorded(self):
        merged = merge_observations(
            [obs(10, "all-except", set(), source="passive"),
             obs(10, "all-except", set(), "11.0.1.0/24", source="active")],
            MEMBERS)
        assert merged.sources == {"passive", "active"}

    def test_openness(self):
        merged = merge_observations([obs(10, "all-except", {20})], MEMBERS)
        assert merged.openness(MEMBERS) == pytest.approx(2 / 3)


class TestInferLinks:
    def reach(self, member, mode, listed):
        return MemberReachability(member_asn=member, ixp_name="X", mode=mode,
                                  listed=frozenset(listed))

    def test_reciprocal_allow_creates_link(self):
        reach = {10: self.reach(10, "all-except", set()),
                 20: self.reach(20, "all-except", set())}
        assert infer_links(reach, MEMBERS) == {(10, 20)}

    def test_one_sided_block_prevents_link(self):
        """Figure 3: C's routes are received by A, but C blocks A, so no link."""
        reach = {10: self.reach(10, "all-except", {20}),
                 20: self.reach(20, "all-except", set())}
        assert infer_links(reach, MEMBERS) == set()

    def test_members_without_reachability_contribute_nothing(self):
        reach = {10: self.reach(10, "all-except", set())}
        assert infer_links(reach, MEMBERS) == set()

    def test_none_except_pairs(self):
        reach = {10: self.reach(10, "none-except", {20}),
                 20: self.reach(20, "none-except", {10, 30}),
                 30: self.reach(30, "all-except", set())}
        links = infer_links(reach, [10, 20, 30])
        assert links == {(10, 20), (20, 30)}

    def test_figure3_full_example(self):
        """Figure 3: A excludes C; B, C, D announce to all; only A-C missing."""
        a, b, c, d = 1, 2, 3, 4
        reach = {
            a: self.reach(a, "all-except", {c}),
            b: self.reach(b, "all-except", set()),
            c: self.reach(c, "all-except", set()),
            d: self.reach(d, "all-except", set()),
        }
        links = infer_links(reach, [a, b, c, d])
        assert (a, c) not in links
        assert links == {(a, b), (a, d), (b, c), (b, d), (c, d)}
