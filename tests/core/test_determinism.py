"""Deterministic ordering of merge/inference outputs.

The bugfix sweep for the runtime-substrate refactor requires that
observation merging and link de-duplication do not depend on set/dict
iteration order: shuffling the inputs must produce identical results,
links are emitted as sorted pairs, and result-level orderings break ties
deterministically.
"""

import random

from repro.core.engine import IXPInference, MLPInferenceResult
from repro.core.reachability import (
    MODE_ALL_EXCEPT,
    MODE_NONE_EXCEPT,
    MemberReachability,
    PolicyObservation,
    infer_links,
    merge_observations,
)
from repro.bgp.prefix import Prefix


def _observation(member, mode, listed, prefix_index=0):
    return PolicyObservation(
        member_asn=member, ixp_name="DE-CIX",
        prefix=Prefix.from_octets(10, 0, prefix_index, 0, 24),
        mode=mode, listed=frozenset(listed))


class TestMergeDeterminism:
    def test_shuffled_observations_merge_identically(self):
        members = set(range(100, 140))
        observations = [
            _observation(100, MODE_ALL_EXCEPT, {101, 102}, 0),
            _observation(100, MODE_ALL_EXCEPT, {103}, 1),
            _observation(100, MODE_NONE_EXCEPT, {104, 105, 106}, 2),
        ]
        baseline = merge_observations(observations, members)
        for seed in range(10):
            shuffled = list(observations)
            random.Random(seed).shuffle(shuffled)
            merged = merge_observations(shuffled, sorted(members))
            assert merged.mode == baseline.mode
            assert merged.listed == baseline.listed
            assert merged.inconsistent_prefixes == baseline.inconsistent_prefixes


class TestInferLinksDeterminism:
    def _reachabilities(self, rng, members):
        reachabilities = {}
        for member in members:
            if rng.random() < 0.2:
                continue  # no reconstructed reachability
            if rng.random() < 0.5:
                listed = frozenset(rng.sample(members, rng.randint(0, 5)))
                mode = MODE_ALL_EXCEPT
            else:
                listed = frozenset(rng.sample(members, rng.randint(0, 20)))
                mode = MODE_NONE_EXCEPT
            reachabilities[member] = MemberReachability(
                member_asn=member, ixp_name="DE-CIX", mode=mode, listed=listed)
        return reachabilities

    def test_bitset_links_match_pairwise_allows(self):
        rng = random.Random(42)
        members = list(range(200, 260))
        reachabilities = self._reachabilities(rng, members)

        expected = set()
        ordered = sorted(members)
        for i, a in enumerate(ordered):
            reach_a = reachabilities.get(a)
            if reach_a is None:
                continue
            for b in ordered[i + 1:]:
                reach_b = reachabilities.get(b)
                if reach_b is None:
                    continue
                if reach_a.allows(b) and reach_b.allows(a):
                    expected.add((a, b))

        assert infer_links(reachabilities, members) == expected
        # Input ordering is irrelevant.
        shuffled = list(members)
        rng.shuffle(shuffled)
        assert infer_links(reachabilities, shuffled) == expected
        # Every link is a sorted pair.
        for a, b in expected:
            assert a < b

    def test_non_reciprocal_mode_matches_pairwise_or(self):
        rng = random.Random(7)
        members = list(range(300, 340))
        reachabilities = self._reachabilities(rng, members)

        expected = set()
        ordered = sorted(members)
        for i, a in enumerate(ordered):
            for b in ordered[i + 1:]:
                reach_a = reachabilities.get(a)
                reach_b = reachabilities.get(b)
                allow_ab = reach_a.allows(b) if reach_a else False
                allow_ba = reach_b.allows(a) if reach_b else False
                if allow_ab or allow_ba:
                    expected.add((a, b))

        assert infer_links(reachabilities, members,
                           require_reciprocity=False) == expected


class TestResultOrderingDeterminism:
    def test_ixp_names_breaks_ties_by_name(self):
        result = MLPInferenceResult()
        for name in ("LINX", "AMS-IX", "DE-CIX"):
            inference = IXPInference(ixp_name=name)
            inference.links = ((1, 2),)
            result.per_ixp[name] = inference
        assert result.ixp_names() == ["AMS-IX", "DE-CIX", "LINX"]

    def test_peer_counts_insertion_order_is_sorted(self):
        result = MLPInferenceResult()
        inference = IXPInference(ixp_name="DE-CIX")
        inference.links = ((1, 9), (2, 3), (5, 9))
        result.per_ixp["DE-CIX"] = inference
        assert list(result.peer_counts()) == [1, 2, 3, 5, 9]

    def test_covered_members_is_sorted_tuple(self):
        inference = IXPInference(ixp_name="DE-CIX")
        inference.reachabilities = {member: object()
                                    for member in (9, 1, 5, 3)}
        assert inference.covered_members() == (1, 3, 5, 9)

    def test_all_member_asns_is_sorted_tuple(self):
        result = MLPInferenceResult()
        for name, links in (("DE-CIX", ((3, 9), (1, 2))),
                            ("LINX", ((2, 7),))):
            inference = IXPInference(ixp_name=name)
            inference.links = links
            result.per_ixp[name] = inference
        assert result.all_member_asns() == (1, 2, 3, 7, 9)


class TestSetterCacheScoping:
    """The passive setter memo is strictly per-instance: its entries
    depend on the instance's relationship snapshot, so the ground-truth
    run and the relationship-free ablation (or two runs of one engine
    whose relationships were updated in between) never share state."""

    def _engine(self):
        from repro.core.engine import MLPInferenceEngine
        from repro.ixp.community_schemes import CommunityScheme, SchemeRegistry
        scheme = CommunityScheme.rs_asn_style("DE-CIX", rs_asn=6695)
        return MLPInferenceEngine(
            registry=SchemeRegistry([scheme]),
            rs_members={"DE-CIX": {1, 2, 3}})

    def test_passive_instances_have_private_caches(self):
        from repro.core.passive import PassiveInference
        engine = self._engine()
        a = PassiveInference(engine.interpreter)
        b = PassiveInference(engine.interpreter)
        assert a._setter_cache is not b._setter_cache

    def test_setter_depends_on_relationship_map(self):
        from repro.bgp.attributes import ASPath
        from repro.bgp.messages import RibEntry
        from repro.bgp.policy import Relationship
        from repro.core.passive import PassiveInference
        engine = self._engine()
        interpreter = engine.interpreter
        interpreter.update_members("DE-CIX", {100, 200, 300})
        entry = RibEntry(peer_asn=400, prefix=Prefix.parse("10.0.0.0/24"),
                         as_path=ASPath((300, 200, 100)))
        # Three participants: the p2p pair decides the setter; flipping
        # the relationship map must flip the attribution (no sharing).
        with_first_pair = PassiveInference(engine.interpreter, {
            (300, 200): Relationship.PEER,
            (200, 100): Relationship.PROVIDER})
        with_second_pair = PassiveInference(engine.interpreter, {
            (300, 200): Relationship.PROVIDER,
            (200, 100): Relationship.PEER})
        assert with_first_pair.identify_setter("DE-CIX", entry) == 200
        assert with_second_pair.identify_setter("DE-CIX", entry) == 100

    def test_setter_cache_invalidated_by_membership_update(self):
        from repro.bgp.attributes import ASPath
        from repro.bgp.messages import RibEntry
        from repro.core.passive import PassiveInference
        engine = self._engine()
        interpreter = engine.interpreter
        interpreter.update_members("DE-CIX", {100, 200})
        passive = PassiveInference(interpreter)
        entry = RibEntry(peer_asn=300, prefix=Prefix.parse("10.0.0.0/24"),
                         as_path=ASPath((300, 200, 100)))
        # Two participants: the one closer to the origin is the setter.
        assert passive.identify_setter("DE-CIX", entry) == 100
        # AS300 joins the RS: three participants, no known p2p pair ->
        # the conservative fallback, not the stale cached answer.
        interpreter.update_members("DE-CIX", {100, 200, 300})
        assert passive.identify_setter("DE-CIX", entry) == 100  # fallback
        interpreter.update_members("DE-CIX", {200, 300})
        assert passive.identify_setter("DE-CIX", entry) == 200


class TestEndToEndDeterminism:
    def test_rerunning_inference_is_identical(self, small_scenario,
                                              inference_result):
        rerun = small_scenario.run_inference()
        assert rerun.all_links() == inference_result.all_links()
        assert rerun.ixp_names() == inference_result.ixp_names()
        assert rerun.table2() == inference_result.table2()
        for name in rerun.per_ixp:
            a = rerun.per_ixp[name]
            b = inference_result.per_ixp[name]
            assert sorted(a.links) == sorted(b.links)
            assert a.covered_members() == b.covered_members()
