"""Tests for connectivity discovery, reciprocity, the engine and validation."""

import pytest

from repro.core.connectivity import ConnectivityDiscovery
from repro.core.reciprocity import ReciprocityValidator
from repro.core.validation import LinkValidator
from repro.ixp.looking_glass import ASLookingGlass, LGRoute
from repro.bgp.prefix import Prefix
from repro.registries.irr import AutNumPolicy, IRRDatabase


class TestConnectivityDiscovery:
    def test_lg_is_authoritative(self, small_scenario, connectivity_reports):
        for name, lg in small_scenario.rs_looking_glasses.items():
            report = connectivity_reports[name]
            truth = set(small_scenario.graph.rs_members_of_ixp(name))
            assert truth <= report.members
            assert report.members_from("lg") == truth

    def test_linx_falls_back_to_irr_search(self, small_scenario, connectivity_reports):
        report = connectivity_reports["LINX"]
        truth = set(small_scenario.graph.rs_members_of_ixp("LINX"))
        assert not report.complete
        assert report.members
        assert report.members <= truth
        assert all(src == "irr-search" for src in report.sources.values())

    def test_as_set_used_when_no_lg(self, small_scenario, connectivity_reports):
        # AMS-IX has no route-server LG but publishes an as-set.
        report = connectivity_reports["AMS-IX"]
        assert report.members
        assert report.members_from("as-set") or report.members_from("website")


class TestReciprocity:
    def test_section_4_4_holds_on_scenario(self, small_scenario):
        validator = ReciprocityValidator(small_scenario.irr)
        members = small_scenario.graph.rs_members_of_ixp("AMS-IX")
        report = validator.validate("AMS-IX", members)
        assert report.members_checked > 0
        assert report.holds
        assert 0.0 <= report.fraction_import_more_permissive <= 1.0
        summary = report.summary()
        assert summary["violations"] == 0

    def test_violation_detected(self):
        irr = IRRDatabase()
        irr.register_aut_num(AutNumPolicy(asn=1, blocked_export={2},
                                          blocked_import={2, 3}))
        report = ReciprocityValidator(irr).validate("X", [1])
        assert not report.holds
        assert report.violations[0].import_blocks_not_in_export == {3}

    def test_members_without_irr_data_skipped(self):
        irr = IRRDatabase()
        report = ReciprocityValidator(irr).validate("X", [1, 2, 3])
        assert report.members_checked == 0


class TestEngineOnScenario:
    def test_precision_against_ground_truth(self, small_scenario, inference_result):
        """At least 98% of inferred links must exist (the paper validates
        98.4%); with ground truth available we check exact precision."""
        inferred = set(inference_result.all_links())
        truth = small_scenario.ground_truth_links()
        assert inferred
        true_positives = inferred & truth
        assert len(true_positives) / len(inferred) >= 0.98

    def test_recall_is_substantial(self, small_scenario, inference_result):
        inferred = set(inference_result.all_links())
        truth = small_scenario.ground_truth_links()
        assert len(inferred & truth) / len(truth) >= 0.6

    def test_most_links_invisible_in_public_bgp(self, small_scenario, inference_result):
        inferred = set(inference_result.all_links())
        bgp = small_scenario.public_bgp_links()
        fraction_visible = len(inferred & bgp) / len(inferred)
        assert fraction_visible < 0.5

    def test_per_ixp_links_between_members(self, small_scenario, inference_result):
        for name, inference in inference_result.per_ixp.items():
            members = set(small_scenario.graph.rs_members_of_ixp(name)) | \
                inference.members
            for a, b in inference.links:
                assert a in members and b in members

    def test_table2_rows_complete(self, small_scenario, inference_result):
        rows = inference_result.table2()
        assert len(rows) == 13
        assert all(set(row) >= {"IXP", "RS", "Pasv", "Active", "Links"}
                   for row in rows)

    def test_passive_only_finds_fewer_members_than_combined(self, small_scenario):
        passive_only = small_scenario.run_inference(use_active=False)
        combined_links = small_scenario.run_inference().all_links()
        assert len(passive_only.all_links()) <= len(combined_links)

    def test_reciprocity_ablation_monotone(self, small_scenario):
        strict = small_scenario.run_inference()
        loose = small_scenario.run_inference(require_reciprocity=False)
        assert set(strict.all_links()) <= set(loose.all_links())

    def test_links_are_sorted_tuples(self, inference_result):
        all_links = inference_result.all_links()
        assert isinstance(all_links, tuple)
        assert list(all_links) == sorted(set(all_links))
        for inference in inference_result.per_ixp.values():
            assert isinstance(inference.links, tuple)
            assert list(inference.links) == sorted(set(inference.links))
            assert all(a < b for a, b in inference.links)

    def test_multi_ixp_overlap_detected(self, inference_result):
        # Some ASes co-locate at several IXPs, so some links appear twice.
        assert inference_result.total_links() >= len(inference_result.all_links())


class TestLinkValidator:
    def test_validation_on_scenario(self, small_scenario, inference_result):
        inferred = list(inference_result.all_links())[:400]
        validator = LinkValidator(
            looking_glasses=small_scenario.validation_lgs,
            origin_prefixes=small_scenario.origin_prefixes(),
            geolocation=small_scenario.geolocation,
        )
        report = validator.validate(inferred)
        assert report.num_tested > 0
        # Confirmation should be high but not necessarily perfect: LGs that
        # display only the best path hide some genuine links (figure 8).
        assert report.confirmation_rate >= 0.7
        rates = report.rate_by_display_mode()
        assert set(rates) == {"all-paths", "best-path"}

    def test_confirmed_links_are_true_links(self, small_scenario, inference_result):
        inferred = list(inference_result.all_links())[:300]
        validator = LinkValidator(
            looking_glasses=small_scenario.validation_lgs,
            origin_prefixes=small_scenario.origin_prefixes(),
        )
        report = validator.validate(inferred)
        truth = small_scenario.ground_truth_links() | small_scenario.public_bgp_links()
        graph = small_scenario.graph
        for link in report.confirmed_links():
            assert link in truth or graph.has_link(*link)

    def test_synthetic_best_path_lg_hides_link(self):
        # The prefix reachable through AS2 (the far endpoint of the tested
        # link) is also reachable through a more-preferred path via AS5.
        prefix = Prefix.parse("11.0.0.0/24")
        prefixes_behind_far_end = {2: [prefix]}
        lg = ASLookingGlass(asn=1, display_all_paths=False)
        lg.load_route(LGRoute(prefix=prefix, as_path=(1, 5, 9), best=True))
        lg.load_route(LGRoute(prefix=prefix, as_path=(1, 2, 9), best=False))
        validator = LinkValidator([lg], origin_prefixes=prefixes_behind_far_end)
        report = validator.validate([(1, 2)])
        assert report.num_tested == 1 and report.num_confirmed == 0

        all_paths_lg = ASLookingGlass(asn=1, display_all_paths=True)
        all_paths_lg.load_route(LGRoute(prefix=prefix, as_path=(1, 5, 9), best=True))
        all_paths_lg.load_route(LGRoute(prefix=prefix, as_path=(1, 2, 9), best=False))
        report = LinkValidator(
            [all_paths_lg],
            origin_prefixes=prefixes_behind_far_end).validate([(1, 2)])
        assert report.num_confirmed == 1
