"""Tests for link types and valley-free path classification."""

from repro.bgp.policy import Relationship
from repro.topology.relationships import (
    LinkType,
    classify_path,
    count_peering_steps,
    is_valley_free,
    link_type_from_relationship,
)


def relmap(entries):
    """entries: list of (a, b, relationship of b seen from a)."""
    result = {}
    for a, b, rel in entries:
        result[(a, b)] = rel
        result[(b, a)] = rel.inverse()
    return result


class TestLinkType:
    def test_mapping_from_relationship(self):
        assert link_type_from_relationship(Relationship.CUSTOMER) is LinkType.C2P
        assert link_type_from_relationship(Relationship.PROVIDER) is LinkType.C2P
        assert link_type_from_relationship(Relationship.PEER) is LinkType.P2P
        assert link_type_from_relationship(Relationship.RS_PEER) is LinkType.RS_P2P
        assert link_type_from_relationship(Relationship.SIBLING) is LinkType.SIBLING

    def test_is_peering(self):
        assert LinkType.P2P.is_peering and LinkType.RS_P2P.is_peering
        assert not LinkType.C2P.is_peering


class TestValleyFree:
    def test_pure_uphill_downhill(self):
        # Path (observer first): 30 20 10, where 10 is customer of 20 and
        # 20 customer of 30: route climbed from 10 to 30.
        relationships = relmap([(20, 10, Relationship.CUSTOMER),
                                (30, 20, Relationship.CUSTOMER)])
        assert is_valley_free([30, 20, 10], relationships)

    def test_single_peak_with_peer(self):
        relationships = relmap([
            (20, 10, Relationship.CUSTOMER),   # 10 customer of 20
            (20, 30, Relationship.PEER),
            (30, 40, Relationship.CUSTOMER),   # 40 customer of 30
        ])
        # Observer 40 sees path 40? path is [40, 30, 20, 10]? Observer-side
        # first: 40 learned from 30, 30 from 20 (peer), 20 from customer 10.
        assert is_valley_free([40, 30, 20, 10], relationships)

    def test_valley_detected(self):
        # 10 -> up to 20 -> down to 30 -> up to 40 is a valley.
        relationships = relmap([
            (20, 10, Relationship.CUSTOMER),
            (20, 30, Relationship.PROVIDER),   # 30 is 20's provider? no:
        ])
        relationships = relmap([
            (20, 10, Relationship.CUSTOMER),   # 10 customer of 20
            (30, 20, Relationship.PROVIDER),   # 20 is provider of 30 -> 30 customer of 20
            (40, 30, Relationship.CUSTOMER),   # 30 customer of 40
        ])
        assert classify_path([40, 30, 20, 10], relationships) == "valley"

    def test_two_peering_links_is_a_valley(self):
        relationships = relmap([
            (20, 10, Relationship.PEER),
            (30, 20, Relationship.PEER),
        ])
        assert classify_path([30, 20, 10], relationships) == "valley"
        assert count_peering_steps([30, 20, 10], relationships) == 2

    def test_unknown_relationship_returns_none(self):
        assert classify_path([1, 2, 3], {}) is None

    def test_short_and_prepended_paths(self):
        assert classify_path([10], {}) == "valley-free"
        relationships = relmap([(20, 10, Relationship.CUSTOMER)])
        assert is_valley_free([20, 20, 10, 10], relationships)

    def test_sibling_hops_ignored(self):
        relationships = relmap([
            (20, 10, Relationship.CUSTOMER),
            (21, 20, Relationship.SIBLING),
            (21, 30, Relationship.PEER),
        ])
        assert is_valley_free([30, 21, 20, 10], relationships)

    def test_count_peering_steps_single(self):
        relationships = relmap([
            (20, 10, Relationship.CUSTOMER),
            (30, 20, Relationship.PEER),
        ])
        assert count_peering_steps([30, 20, 10], relationships) == 1
