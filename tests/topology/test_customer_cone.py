"""Tests for customer cones and degrees."""

import pytest

from repro.topology.as_graph import ASGraph, ASNode
from repro.topology.customer_cone import (
    cone_size_ranking,
    customer_cone,
    customer_cones,
    customer_degree,
    is_in_customer_cone,
)


@pytest.fixture
def hierarchy():
    g = ASGraph()
    for asn in [1, 2, 3, 4, 5, 6]:
        g.add_as(ASNode(asn=asn))
    # 1 is the top provider: 2 and 3 are its customers; 4,5 below 2; 6 below 4.
    g.add_c2p(2, 1)
    g.add_c2p(3, 1)
    g.add_c2p(4, 2)
    g.add_c2p(5, 2)
    g.add_c2p(6, 4)
    return g


class TestCustomerCone:
    def test_cone_of_top_provider_is_everything(self, hierarchy):
        assert customer_cone(hierarchy, 1) == {1, 2, 3, 4, 5, 6}

    def test_cone_of_mid_provider(self, hierarchy):
        assert customer_cone(hierarchy, 2) == {2, 4, 5, 6}

    def test_cone_of_stub_is_itself(self, hierarchy):
        assert customer_cone(hierarchy, 6) == {6}

    def test_batch_computation_matches_single(self, hierarchy):
        cones = customer_cones(hierarchy)
        for asn in hierarchy.asns():
            assert cones[asn] == customer_cone(hierarchy, asn)

    def test_customer_degree(self, hierarchy):
        assert customer_degree(hierarchy, 1) == 2
        assert customer_degree(hierarchy, 2) == 2
        assert customer_degree(hierarchy, 6) == 0

    def test_cone_size_ranking_puts_top_provider_first(self, hierarchy):
        ranking = cone_size_ranking(hierarchy)
        assert ranking[0] == 1
        assert ranking[1] == 2

    def test_is_in_customer_cone(self, hierarchy):
        assert is_in_customer_cone(hierarchy, 1, 6)
        assert not is_in_customer_cone(hierarchy, 3, 6)

    def test_multihomed_customer_in_both_cones(self, hierarchy):
        hierarchy.add_c2p(6, 3)
        assert 6 in customer_cone(hierarchy, 3)
        assert 6 in customer_cone(hierarchy, 2)

    def test_replacing_link_orientation_keeps_one_link(self):
        g = ASGraph()
        for asn in (1, 2):
            g.add_as(ASNode(asn=asn))
        g.add_c2p(1, 2)
        g.add_c2p(2, 1)  # re-registering flips the orientation, no duplicate
        assert g.num_links() == 1
        cones = customer_cones(g)
        assert cones[1] == {1, 2}
        assert cones[2] == {2}
