"""Tests for the AS graph container."""

import pytest

from repro.bgp.policy import Relationship
from repro.bgp.prefix import Prefix
from repro.topology.as_graph import ASGraph, ASLink, ASNode, ASType
from repro.topology.relationships import LinkType


@pytest.fixture
def graph():
    g = ASGraph()
    for asn, as_type in [(10, ASType.STUB), (20, ASType.REGIONAL),
                         (30, ASType.TRANSIT), (40, ASType.STUB)]:
        g.add_as(ASNode(asn=asn, as_type=as_type))
    g.add_c2p(10, 20)        # 10 customer of 20
    g.add_c2p(20, 30)
    g.add_p2p(20, 40, ixp="DE-CIX", multilateral=True)
    return g


class TestNodesAndLinks:
    def test_membership(self, graph):
        assert 10 in graph and graph.has_as(10)
        assert 99 not in graph
        assert len(graph) == 4

    def test_add_link_requires_nodes(self, graph):
        with pytest.raises(KeyError):
            graph.add_link(ASLink(10, 999, LinkType.P2P))

    def test_self_loop_rejected(self, graph):
        with pytest.raises(ValueError):
            graph.add_link(ASLink(10, 10, LinkType.P2P))

    def test_link_lookup_order_independent(self, graph):
        assert graph.get_link(20, 10) is graph.get_link(10, 20)
        assert graph.has_link(40, 20)

    def test_link_helpers(self, graph):
        link = graph.get_link(10, 20)
        assert link.involves(10) and not link.involves(40)
        assert link.other(10) == 20
        with pytest.raises(ValueError):
            link.other(99)

    def test_remove_link(self, graph):
        assert graph.remove_link(10, 20)
        assert not graph.has_link(10, 20)
        assert not graph.remove_link(10, 20)

    def test_links_filtered_by_type(self, graph):
        assert len(graph.links(LinkType.C2P)) == 2
        assert len(graph.links(LinkType.RS_P2P)) == 1
        assert len(graph.peering_links()) == 1
        assert graph.num_links() == 3


class TestRelationshipQueries:
    def test_customers_and_providers(self, graph):
        assert graph.customers(20) == [10]
        assert graph.providers(20) == [30]
        assert graph.providers(10) == [20]
        assert graph.customers(10) == []

    def test_peers(self, graph):
        assert graph.peers(20) == [40]
        assert graph.peers(20, include_rs=False) == []

    def test_relationship_view(self, graph):
        assert graph.relationship(20, 10) is Relationship.CUSTOMER
        assert graph.relationship(10, 20) is Relationship.PROVIDER
        assert graph.relationship(20, 40) is Relationship.RS_PEER
        assert graph.relationship(10, 40) is None

    def test_relationship_map_is_symmetric(self, graph):
        relmap = graph.relationship_map()
        assert relmap[(20, 10)] is Relationship.CUSTOMER
        assert relmap[(10, 20)] is Relationship.PROVIDER

    def test_degrees_and_stubs(self, graph):
        assert graph.degree(20) == 3
        assert graph.transit_degree(20) == 1
        # 30 provides transit to 20, so only 10 and 40 are stubs.
        assert set(graph.stubs()) == {10, 40}


class TestIXPAnnotations:
    def test_ixp_membership_queries(self, graph):
        graph.get_as(20).ixps.add("DE-CIX")
        graph.get_as(40).ixps.add("DE-CIX")
        graph.get_as(40).rs_memberships.add("DE-CIX")
        assert graph.members_of_ixp("DE-CIX") == [20, 40]
        assert graph.rs_members_of_ixp("DE-CIX") == [40]

    def test_prefixes(self, graph):
        graph.get_as(10).prefixes.append(Prefix.parse("10.0.0.0/24"))
        assert graph.prefixes_of(10) == [Prefix.parse("10.0.0.0/24")]


class TestPropagationExport:
    def test_adjacency_export_counts(self, graph):
        adjacencies = graph.propagation_adjacencies()
        # Every link yields two directed adjacencies.
        assert len(adjacencies) == 2 * graph.num_links()

    def test_rs_community_provider_called_for_rs_links(self, graph):
        from repro.bgp.communities import Community
        calls = []

        def provider(asn, ixp):
            calls.append((asn, ixp))
            return frozenset({Community(6695, asn if asn < 65536 else 0)})

        adjacencies = graph.propagation_adjacencies(rs_community_provider=provider)
        rs_edges = [a for a in adjacencies
                    if a.relationship is Relationship.RS_PEER]
        assert len(rs_edges) == 2
        assert all(edge.communities for edge in rs_edges)
        assert ("DE-CIX" in {ixp for _, ixp in calls})

    def test_summary(self, graph):
        summary = graph.summary()
        assert summary["ases"] == 4
        assert summary["links"] == 3
        assert summary["rs_p2p_links"] == 1
