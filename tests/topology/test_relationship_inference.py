"""Tests for AS-Rank-style relationship inference from AS paths."""

import pytest

from repro.bgp.attributes import ASPath
from repro.bgp.policy import Relationship
from repro.topology.relationship_inference import RelationshipInference


def paths_from(tuples):
    return [ASPath(t) for t in tuples]


class TestSmallTopology:
    @pytest.fixture
    def inferred(self):
        # Clique {1, 2}; 10 and 11 are customers of 1; 20 customer of 2;
        # 30 customer of 10.  Observer paths from several vantage points.
        paths = paths_from([
            (10, 1, 2, 20),
            (11, 1, 2, 20),
            (20, 2, 1, 10),
            (20, 2, 1, 11),
            (30, 10, 1, 2, 20),
            (10, 1, 11),
            (20, 2, 1, 10, 30),
            (11, 1, 10, 30),
        ])
        return RelationshipInference(clique_size=2).infer(paths)

    def test_clique_link_is_p2p(self, inferred):
        assert inferred.relationship(1, 2) is Relationship.PEER

    def test_customer_links_oriented_correctly(self, inferred):
        assert (10, 1) in inferred.c2p
        assert (20, 2) in inferred.c2p
        assert (30, 10) in inferred.c2p

    def test_relationship_view(self, inferred):
        assert inferred.relationship(10, 1) is Relationship.PROVIDER
        assert inferred.relationship(1, 10) is Relationship.CUSTOMER
        assert inferred.relationship(10, 999) is None

    def test_customer_cone_from_inferred_links(self, inferred):
        assert inferred.customer_cone(1) >= {1, 10, 11, 30}
        assert inferred.customer_cone(10) == {10, 30}

    def test_customer_degree(self, inferred):
        assert inferred.customer_degree(1) >= 2
        assert inferred.customer_degree(30) == 0

    def test_relationship_map_is_consistent(self, inferred):
        relmap = inferred.relationship_map()
        assert relmap[(10, 1)] is Relationship.PROVIDER
        assert relmap[(1, 10)] is Relationship.CUSTOMER


class TestSanitisation:
    def test_dirty_paths_ignored(self):
        paths = paths_from([(10, 23456, 20), (10, 20, 10)])
        inferred = RelationshipInference().infer(paths)
        assert not inferred.links()

    def test_prepending_collapsed(self):
        paths = paths_from([(10, 1, 1, 1, 2, 20), (20, 2, 1, 10)])
        inferred = RelationshipInference(clique_size=2).infer(paths)
        assert (min(1, 2), max(1, 2)) in inferred.links()

    def test_empty_input(self):
        inferred = RelationshipInference().infer([])
        assert not inferred.links()
        assert not inferred.clique


class TestAgainstGroundTruth:
    def test_accuracy_on_synthetic_internet(self, small_scenario):
        """Relationship inference over the scenario's public BGP paths
        should classify visible c2p links with high accuracy (the paper
        relies on >99% accuracy from [32])."""
        graph = small_scenario.graph
        entries = small_scenario.archive.clean_stable_entries()
        paths = [entry.as_path for entry in entries]
        inferred = RelationshipInference(clique_size=8).infer(paths)

        correct = 0
        wrong = 0
        for customer, provider in inferred.c2p:
            truth = graph.relationship(customer, provider)
            if truth is None:
                continue
            if truth is Relationship.PROVIDER:       # provider of customer
                correct += 1
            elif truth is Relationship.CUSTOMER:
                wrong += 1
        assert correct + wrong > 0
        assert correct / (correct + wrong) > 0.90
