"""The composable generation phases behind the synthetic Internet."""

from __future__ import annotations

import pytest

from repro.topology.generator import GeneratorConfig, InternetGenerator
from repro.topology.phases import DEFAULT_PHASE_ORDER, PHASES


class TestPhaseRegistry:
    def test_default_order_covers_registry(self):
        assert set(DEFAULT_PHASE_ORDER) == set(PHASES)
        assert DEFAULT_PHASE_ORDER[0] == "allocate-ases"
        assert DEFAULT_PHASE_ORDER[-1] == "bilateral-ixp"

    def test_unknown_phase_rejected(self):
        config = GeneratorConfig(phases=("allocate-ases", "terraform"))
        with pytest.raises(ValueError, match="unknown generation phases"):
            config.resolved_phases()

    def test_default_phases_resolve(self):
        assert GeneratorConfig().resolved_phases() == DEFAULT_PHASE_ORDER


class TestPhaseSelection:
    def test_topology_only_subset_skips_ixp_fabric(self):
        config = GeneratorConfig(
            seed=11, scale=0.1, ixp_member_scale=0.1,
            phases=("allocate-ases", "hierarchy", "prefixes", "policies"))
        internet = InternetGenerator(config).generate()
        assert len(internet.graph) > 0
        assert internet.export_intents == {}
        assert internet.mlp_ground_truth == {}
        assert all(not node.ixps for node in internet.graph.nodes())

    def test_subset_prefix_matches_full_run_draws(self):
        """Phases draw from one shared stream: a prefix of the phase
        sequence produces exactly the same early state as a full run."""
        kwargs = dict(seed=23, scale=0.1, ixp_member_scale=0.1)
        full = InternetGenerator(GeneratorConfig(**kwargs)).generate()
        prefix = InternetGenerator(GeneratorConfig(
            **kwargs, phases=DEFAULT_PHASE_ORDER[:5])).generate()
        assert {n.asn for n in prefix.graph.nodes()} == \
            {n.asn for n in full.graph.nodes()}
        assert {n.asn: [str(p) for p in n.prefixes]
                for n in prefix.graph.nodes()} == \
            {n.asn: [str(p) for p in n.prefixes]
             for n in full.graph.nodes()}


class TestPhaseKnobs:
    def test_zero_private_peering_probability(self):
        config = GeneratorConfig(seed=5, scale=0.1, ixp_member_scale=0.1,
                                 hypergiant_private_peering_probability=0.0)
        internet = InternetGenerator(config).generate()
        assert internet.private_peering_pairs == set()

    def test_hypergiant_presence_zero_keeps_giants_off_ixps(self):
        config = GeneratorConfig(seed=5, scale=0.1, ixp_member_scale=0.1,
                                 hypergiant_ixp_presence=0.0)
        internet = InternetGenerator(config).generate()
        for giant in internet.hypergiants:
            assert not internet.graph.get_as(giant).ixps

    def test_content_multiplier_scales_population(self):
        base = GeneratorConfig(seed=5, scale=0.3)
        heavy = GeneratorConfig(seed=5, scale=0.3, content_multiplier=3.0)
        assert heavy.num_content == 3 * base.num_content
