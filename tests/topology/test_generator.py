"""Tests for the synthetic Internet generator."""

import pytest

from repro.bgp.asn import is_routable_asn
from repro.topology.as_graph import ASType, PeeringPolicy
from repro.topology.generator import (
    ExportIntent,
    GeneratorConfig,
    InternetGenerator,
    MODE_ALL_EXCEPT,
    MODE_NONE_EXCEPT,
    default_euro_ixps,
)
from repro.topology.relationships import LinkType


@pytest.fixture(scope="module")
def internet():
    config = GeneratorConfig(seed=7, scale=0.12, ixp_member_scale=0.10)
    return InternetGenerator(config).generate()


class TestExportIntent:
    def test_all_except_semantics(self):
        intent = ExportIntent(MODE_ALL_EXCEPT, frozenset({5}))
        assert intent.allows(7)
        assert not intent.allows(5)
        assert intent.allowed_members([1, 5, 7], self_asn=1) == {7}

    def test_none_except_semantics(self):
        intent = ExportIntent(MODE_NONE_EXCEPT, frozenset({5}))
        assert intent.allows(5)
        assert not intent.allows(7)


class TestDefaultIXPs:
    def test_thirteen_ixps_of_table2(self):
        specs = default_euro_ixps()
        assert len(specs) == 13
        names = {spec.name for spec in specs}
        assert {"DE-CIX", "AMS-IX", "LINX", "MSK-IX", "BIX.BG"} <= names

    def test_member_scaling(self):
        small = default_euro_ixps(0.1)
        large = default_euro_ixps(0.5)
        assert all(s.target_members <= l.target_members
                   for s, l in zip(small, large))

    def test_linx_does_not_publish_members(self):
        linx = next(s for s in default_euro_ixps() if s.name == "LINX")
        assert not linx.publishes_member_list


class TestGeneratedInternet:
    def test_hierarchy_has_no_orphans(self, internet):
        graph = internet.graph
        tier1 = [n.asn for n in graph.nodes() if n.as_type is ASType.TIER1]
        for node in graph.nodes():
            if node.as_type is ASType.TIER1:
                continue
            assert graph.providers(node.asn), f"AS{node.asn} has no provider"
        # Tier-1s form a full peering mesh.
        for i, a in enumerate(tier1):
            for b in tier1[i + 1:]:
                assert graph.has_link(a, b)

    def test_all_asns_are_routable(self, internet):
        assert all(is_routable_asn(asn) for asn in internet.graph.asns())

    def test_every_as_has_prefixes(self, internet):
        assert all(node.prefixes for node in internet.graph.nodes())

    def test_prefixes_are_globally_unique(self, internet):
        seen = set()
        for node in internet.graph.nodes():
            for prefix in node.prefixes:
                assert prefix not in seen
                seen.add(prefix)

    def test_rs_members_subset_of_ixp_members(self, internet):
        for spec in internet.ixp_specs:
            members = set(internet.graph.members_of_ixp(spec.name))
            rs_members = set(internet.graph.rs_members_of_ixp(spec.name))
            assert rs_members <= members

    def test_export_intent_for_every_rs_member(self, internet):
        for spec in internet.ixp_specs:
            for asn in internet.graph.rs_members_of_ixp(spec.name):
                assert (spec.name, asn) in internet.export_intents

    def test_mlp_ground_truth_is_reciprocal(self, internet):
        for ixp_name, pairs in internet.mlp_ground_truth.items():
            for a, b in pairs:
                intent_a = internet.export_intents[(ixp_name, a)]
                intent_b = internet.export_intents[(ixp_name, b)]
                assert intent_a.allows(b) and intent_b.allows(a)

    def test_blocked_pairs_not_in_ground_truth(self, internet):
        for ixp_name, pairs in internet.mlp_ground_truth.items():
            members = internet.graph.rs_members_of_ixp(ixp_name)
            pair_set = set(pairs)
            for i, a in enumerate(members):
                intent_a = internet.export_intents[(ixp_name, a)]
                for b in members[i + 1:]:
                    intent_b = internet.export_intents[(ixp_name, b)]
                    if not (intent_a.allows(b) and intent_b.allows(a)):
                        assert (a, b) not in pair_set

    def test_rs_p2p_links_added_to_graph(self, internet):
        rs_links = internet.graph.links(LinkType.RS_P2P)
        assert rs_links
        truth = internet.all_mlp_links()
        for link in rs_links:
            assert link.endpoints in truth

    def test_policy_mix_is_plausible(self, internet):
        nodes = list(internet.graph.nodes())
        open_count = sum(1 for n in nodes if n.policy is PeeringPolicy.OPEN)
        restrictive = sum(1 for n in nodes if n.policy is PeeringPolicy.RESTRICTIVE)
        assert open_count > restrictive

    def test_hypergiants_are_open_and_widely_present(self, internet):
        for giant in internet.hypergiants:
            node = internet.graph.get_as(giant)
            assert node.policy is PeeringPolicy.OPEN
            assert len(node.ixps) >= 5

    def test_density_of_rs_peering_high(self, internet):
        """Ground-truth density should land in the paper's 0.6-1.0 band."""
        for ixp_name, pairs in internet.mlp_ground_truth.items():
            members = internet.graph.rs_members_of_ixp(ixp_name)
            if len(members) < 10:
                continue
            possible = len(members) * (len(members) - 1) / 2
            assert 0.5 <= len(pairs) / possible <= 1.0

    def test_determinism_same_seed(self):
        config = GeneratorConfig(seed=99, scale=0.1, ixp_member_scale=0.1)
        first = InternetGenerator(config).generate()
        second = InternetGenerator(config).generate()
        assert first.all_mlp_links() == second.all_mlp_links()
        assert first.graph.summary() == second.graph.summary()

    def test_different_seed_differs(self):
        a = InternetGenerator(GeneratorConfig(seed=1, scale=0.1,
                                              ixp_member_scale=0.1)).generate()
        b = InternetGenerator(GeneratorConfig(seed=2, scale=0.1,
                                              ixp_member_scale=0.1)).generate()
        assert a.all_mlp_links() != b.all_mlp_links()
