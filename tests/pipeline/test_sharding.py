"""Sharded execution: snapshots, chunking, and single-process equivalence."""

from __future__ import annotations

import pytest

from repro.bgp.propagation import OriginSpec
from repro.pipeline import ArtifactCache, ScenarioRun
from repro.pipeline.shard import chunked, resolve_workers, sharded_propagate
from repro.runtime.snapshot import (
    restore_context,
    snapshot_context,
    snapshot_sizes,
)
from repro.scenarios.workloads import large_scenario_config, small_scenario_config

WORKERS = 4


def _canonical_routes(propagation):
    """Canonical content of a PropagationResult for equality checks."""
    table = {}
    for observer in propagation.observers():
        for origin, route in propagation.iter_routes_at(observer):
            table[(observer, origin)] = (
                route.path, frozenset(route.communities), route.provenance,
                route.learned_from)
    return table


class TestHelpers:
    def test_resolve_workers(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(0) == 1
        assert resolve_workers(6) == 6
        assert resolve_workers(-1) >= 1

    def test_chunked_preserves_order_and_content(self):
        items = list(range(17))
        chunks = chunked(items, 5)
        assert [x for chunk in chunks for x in chunk] == items
        assert all(chunks)
        assert max(len(c) for c in chunks) - min(len(c) for c in chunks) <= 1

    def test_chunked_caps_at_item_count(self):
        assert len(chunked([1, 2], 10)) == 2
        assert chunked([], 3) == [[]]


class TestSnapshot:
    def test_roundtrip_preserves_index(self, small_scenario):
        context = small_scenario.context
        snapshot = snapshot_context(context)
        restored = restore_context(snapshot)
        assert restored.index.summary() == context.index.summary()
        assert list(restored.index.node_asns) == list(context.index.node_asns)
        for phase in ("customer_edges", "peer_edges", "provider_edges"):
            assert getattr(restored.index, phase) == \
                getattr(context.index, phase)
        for bag_id in range(len(context.bags)):
            assert restored.bags.value(bag_id) == context.bags.value(bag_id)

    def test_restored_context_propagates_identically(self, small_scenario):
        context = small_scenario.context
        restored = restore_context(snapshot_context(context))
        origins = [OriginSpec(asn=node.asn, prefixes=list(node.prefixes))
                   for node in small_scenario.graph.nodes()
                   if node.prefixes][:25]
        observers = {vp.asn for vp in small_scenario.vantage_points}
        original = restored_result = None
        for ctx in (context, restored):
            engine = ctx.engine(record_at=observers)
            outcome = _canonical_routes(engine.propagate(origins))
            if original is None:
                original = outcome
            else:
                restored_result = outcome
        assert restored_result == original

    def test_snapshot_sizes_reports_components(self, small_scenario):
        sizes = snapshot_sizes(snapshot_context(small_scenario.context))
        assert sizes["nodes"] == small_scenario.context.index.num_nodes
        assert sizes["customer_phase_bytes"] > 0


class TestShardedPropagation:
    def test_matches_single_process(self, small_scenario):
        context = small_scenario.context
        origins = [OriginSpec(asn=node.asn, prefixes=list(node.prefixes))
                   for node in small_scenario.graph.nodes() if node.prefixes]
        record_at = {vp.asn for vp in small_scenario.vantage_points}
        alt_at = set(list(record_at)[:5])

        single = sharded_propagate(context, origins, record_at, alt_at, None)
        sharded = sharded_propagate(context, origins, record_at, alt_at,
                                    WORKERS)
        assert _canonical_routes(sharded) == _canonical_routes(single)
        assert sharded.observers() == single.observers()
        assert sharded.origins() == single.origins()
        assert sharded.visible_links() == single.visible_links()
        for observer in alt_at:
            for origin in single.origins():
                single_paths = [(r.path, frozenset(r.communities))
                                for r in single.all_paths(observer, origin)]
                sharded_paths = [(r.path, frozenset(r.communities))
                                 for r in sharded.all_paths(observer, origin)]
                assert sharded_paths == single_paths


class TestEndToEndEquivalence:
    @pytest.fixture(scope="class")
    def runs(self):
        """A single-process and a sharded run over separate caches."""
        single = ScenarioRun(small_scenario_config(), cache=ArtifactCache())
        sharded = ScenarioRun(small_scenario_config(), cache=ArtifactCache(),
                              workers=WORKERS)
        return single, sharded

    def test_link_sets_identical(self, runs):
        single, sharded = runs
        assert sharded.inference().all_links() == single.inference().all_links()
        assert sharded.inference().links_by_ixp() == \
            single.inference().links_by_ixp()

    def test_table2_identical(self, runs):
        single, sharded = runs
        assert sharded.inference().table2() == single.inference().table2()
        assert sharded.table2() == single.table2()

    def test_scenario_substrates_identical(self, runs):
        single, sharded = runs
        assert sharded.scenario().public_bgp_links() == \
            single.scenario().public_bgp_links()
        assert sharded.scenario().archive.visible_as_links() == \
            single.scenario().archive.visible_as_links()

    def test_analyses_identical(self, runs):
        single, sharded = runs
        assert sharded.analyses() == single.analyses()


class TestLargeScenarioAcceptance:
    """The acceptance run: sharded (>= 4 workers) large_scenario_config
    end-to-end inference produces identical link sets and Table 2 rows
    to the single-process run."""

    def test_large_sharded_end_to_end_matches(self):
        single = ScenarioRun(large_scenario_config(), cache=ArtifactCache())
        sharded = ScenarioRun(large_scenario_config(), cache=ArtifactCache(),
                              workers=WORKERS)
        single_result = single.inference()
        sharded_result = sharded.inference()
        assert sharded_result.all_links() == single_result.all_links()
        assert sharded_result.links_by_ixp() == single_result.links_by_ixp()
        assert sharded_result.table2() == single_result.table2()
        assert [inference.active_queries
                for inference in sharded_result.per_ixp.values()] == \
            [inference.active_queries
             for inference in single_result.per_ixp.values()]
