"""ScenarioRun: stage-graph execution, fingerprints and artifact caching."""

from __future__ import annotations

import pytest

from repro.pipeline import (
    AnalysisOptions,
    ArtifactCache,
    InferenceOptions,
    ScenarioRun,
    Stage,
    StageGraph,
    europe2013_stage_graph,
)
from repro.scenarios.workloads import scenario_run, small_scenario_config


@pytest.fixture(scope="module")
def shared_cache():
    """One artifact cache shared by the runs in this module."""
    return ArtifactCache()


@pytest.fixture(scope="module")
def cold_run(shared_cache):
    """A cold run that has resolved every stage once."""
    run = ScenarioRun(small_scenario_config(), cache=shared_cache)
    run.analyses()
    run.timeline()      # leaf stage: nothing depends on it
    return run


class TestStageGraph:
    def test_topological_order(self):
        graph = europe2013_stage_graph()
        order = graph.names()
        for name in order:
            for dep in graph.stage(name).deps:
                assert order.index(dep) < order.index(name)

    def test_ancestors(self):
        graph = europe2013_stage_graph()
        assert graph.ancestors("topology") == []
        assert set(graph.ancestors("inference")) == {
            "topology", "ixps", "propagation", "collectors", "viewpoints",
            "registries", "scenario", "connectivity"}

    def test_unknown_dependency_rejected(self):
        with pytest.raises(ValueError, match="unknown stage"):
            StageGraph([Stage("a", fn=lambda run: None, deps=("missing",))])

    def test_cycle_rejected(self):
        with pytest.raises(ValueError, match="cycle"):
            StageGraph([
                Stage("a", fn=lambda run: None, deps=("b",)),
                Stage("b", fn=lambda run: None, deps=("a",)),
            ])

    def test_duplicate_stage_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            StageGraph([Stage("a", fn=lambda run: None),
                        Stage("a", fn=lambda run: None)])


class TestFingerprints:
    def test_stable_across_runs(self):
        a = ScenarioRun(small_scenario_config())
        b = ScenarioRun(small_scenario_config())
        assert a.fingerprints() == b.fingerprints()

    def test_workers_do_not_change_fingerprints(self):
        a = ScenarioRun(small_scenario_config())
        b = ScenarioRun(small_scenario_config(), workers=4)
        assert a.fingerprints() == b.fingerprints()

    def test_generator_change_invalidates_everything(self):
        base = ScenarioRun(small_scenario_config(seed=1)).fingerprints()
        other = ScenarioRun(small_scenario_config(seed=2)).fingerprints()
        assert all(base[name] != other[name] for name in base)

    def test_analysis_knob_only_touches_analyses(self):
        base = ScenarioRun(small_scenario_config()).fingerprints()
        tweaked = ScenarioRun(
            small_scenario_config(),
            analysis_options=AnalysisOptions(figures=("table2",)),
        ).fingerprints()
        assert tweaked["analyses"] != base["analyses"]
        for name in base:
            if name != "analyses":
                assert tweaked[name] == base[name]

    def test_inference_knob_touches_inference_and_downstream(self):
        base = ScenarioRun(small_scenario_config()).fingerprints()
        tweaked = ScenarioRun(
            small_scenario_config(),
            inference_options=InferenceOptions(require_reciprocity=False),
        ).fingerprints()
        assert tweaked["inference"] != base["inference"]
        assert tweaked["analyses"] != base["analyses"]
        for name in ("topology", "ixps", "propagation", "collectors",
                     "viewpoints", "registries", "scenario", "connectivity"):
            assert tweaked[name] == base[name]

    def test_collector_knob_leaves_propagation_alone(self):
        base = ScenarioRun(small_scenario_config()).fingerprints()
        config = small_scenario_config()
        config.transient_fraction = 0.05
        tweaked = ScenarioRun(config).fingerprints()
        for name in ("topology", "ixps", "propagation", "viewpoints",
                     "registries"):
            assert tweaked[name] == base[name]
        for name in ("collectors", "scenario", "connectivity", "inference",
                     "analyses"):
            assert tweaked[name] != base[name]


class TestCaching:
    def test_cold_run_computes_every_stage(self, cold_run):
        statuses = cold_run.stage_statuses()
        assert set(statuses) == set(europe2013_stage_graph().names())
        assert set(statuses.values()) == {"computed"}

    def test_warm_rerun_hits_memory_everywhere(self, shared_cache, cold_run):
        rerun = ScenarioRun(small_scenario_config(), cache=shared_cache)
        rerun.analyses()
        assert set(rerun.stage_statuses().values()) == {"memory"}

    def test_analysis_knob_change_skips_all_upstream_stages(
            self, shared_cache, cold_run):
        tweaked = ScenarioRun(
            small_scenario_config(), cache=shared_cache,
            analysis_options=AnalysisOptions(figures=("table2", "density"),
                                             small_degree_threshold=5))
        summaries = tweaked.analyses()
        statuses = tweaked.stage_statuses()
        assert statuses["analyses"] == "computed"
        assert all(status == "memory" for name, status in statuses.items()
                   if name != "analyses")
        assert set(summaries) == {"table2", "density"}
        # The cached upstream artifacts are reused, not rebuilt.
        assert tweaked.scenario() is cold_run.scenario()
        assert tweaked.inference() is cold_run.inference()

    def test_artifacts_identical_within_cache(self, shared_cache, cold_run):
        rerun = ScenarioRun(small_scenario_config(), cache=shared_cache)
        assert rerun.scenario() is cold_run.scenario()

    def test_events_record_one_entry_per_stage(self, cold_run):
        stages = [event.stage for event in cold_run.events]
        assert len(stages) == len(set(stages))
        assert cold_run.cache_summary() == {"computed": len(stages)}


class TestDiskCache:
    def test_persistent_stages_roundtrip_via_disk(self, tmp_path):
        config = small_scenario_config()
        first = ScenarioRun(config, cache=ArtifactCache(tmp_path))
        result = first.inference()
        # A separate process/session: fresh memory cache, same directory.
        second = ScenarioRun(config, cache=ArtifactCache(tmp_path))
        reloaded = second.inference()
        assert second.stage_statuses() == {"inference": "disk"}
        assert reloaded.all_links() == result.all_links()
        assert reloaded.table2() == result.table2()

    def test_corrupt_disk_file_treated_as_miss(self, tmp_path):
        config = small_scenario_config()
        first = ScenarioRun(config, cache=ArtifactCache(tmp_path))
        result = first.inference()
        fingerprint = first.fingerprint("inference")
        victim = ArtifactCache(tmp_path)._disk_path("inference", fingerprint)
        victim.write_bytes(b"not a pickle")
        recovered = ScenarioRun(config, cache=ArtifactCache(tmp_path))
        assert recovered.inference().all_links() == result.all_links()
        assert recovered.stage_statuses()["inference"] == "computed"

    def test_disk_miss_on_changed_options(self, tmp_path):
        config = small_scenario_config()
        ScenarioRun(config, cache=ArtifactCache(tmp_path)).inference()
        other = ScenarioRun(
            config, cache=ArtifactCache(tmp_path),
            inference_options=InferenceOptions(use_active=False))
        other.inference()
        # Inference recomputed, but the expensive persisted build stages
        # (topology, propagation) come back from disk.
        statuses = other.stage_statuses()
        assert statuses["inference"] == "computed"
        assert statuses["topology"] == "disk"
        assert statuses["propagation"] == "disk"


class TestWorkloadEntryPoint:
    def test_named_workload_builds_run(self):
        run = scenario_run("small")
        assert isinstance(run, ScenarioRun)
        assert run.config == small_scenario_config()

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="unknown workload"):
            scenario_run("galactic")


class TestScenarioEquivalence:
    def test_wrapper_matches_staged_pipeline(self, small_scenario, cold_run):
        """`build_europe2013` (the compatibility wrapper) and a staged
        run assemble the same scenario content."""
        staged = cold_run.scenario()
        assert staged.ground_truth_links() == small_scenario.ground_truth_links()
        assert staged.public_bgp_links() == small_scenario.public_bgp_links()
        assert [vp.asn for vp in staged.vantage_points] == \
            [vp.asn for vp in small_scenario.vantage_points]
        assert staged.rs_members_by_ixp() == small_scenario.rs_members_by_ixp()
