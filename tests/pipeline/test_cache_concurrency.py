"""ArtifactCache disk-layer crash safety and cross-process races.

The disk layer's contract: a reader either sees a complete pickle or a
miss — never a partial file — and a corrupt entry (truncated write from
a crashed process, incompatible pickle) is deleted on read so the next
writer replaces it instead of every reader failing forever.
"""

import multiprocessing
import os
import pickle

import pytest

from repro.pipeline.cache import STATUS_DISK, ArtifactCache

FP = "a" * 64  # a fingerprint-shaped key


def disk_path(cache: ArtifactCache) -> "os.PathLike":
    return cache._disk_path("stage", FP)


class TestCorruptEntries:
    def test_truncated_pickle_is_a_miss_and_deleted(self, tmp_path):
        writer = ArtifactCache(tmp_path)
        writer.put("stage", FP, {"payload": list(range(1000))}, persist=True)
        path = disk_path(writer)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])

        reader = ArtifactCache(tmp_path)
        status, value = reader.get("stage", FP)
        assert (status, value) == (None, None)
        assert not path.exists()  # deleted so the next put replaces it

        # ... and the recompute-and-put path repopulates it cleanly.
        reader.put("stage", FP, {"payload": "fresh"}, persist=True)
        status, value = ArtifactCache(tmp_path).get("stage", FP)
        assert status == STATUS_DISK
        assert value == {"payload": "fresh"}

    def test_garbage_bytes_are_a_miss_and_deleted(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        path = disk_path(cache)
        path.write_bytes(b"not a pickle at all")
        assert cache.get("stage", FP) == (None, None)
        assert not path.exists()

    def test_fingerprint_prefix_collision_is_not_deleted(self, tmp_path):
        # A well-formed payload whose full fingerprint differs is another
        # config sharing the 32-hex filename prefix — not corruption.
        other_fp = FP[:32] + "b" * 32
        writer = ArtifactCache(tmp_path)
        writer.put("stage", other_fp, "other-config", persist=True)
        path = disk_path(writer)
        assert path.exists()

        reader = ArtifactCache(tmp_path)
        assert reader.get("stage", FP) == (None, None)
        assert path.exists()  # the other config's entry survives
        assert reader.get("stage", other_fp) == (STATUS_DISK, "other-config")

    def test_failed_put_leaves_no_partial_files(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        with pytest.raises(Exception):
            cache.put("stage", FP, lambda: None, persist=True)  # unpicklable
        assert list(tmp_path.iterdir()) == []  # no final file, no sidecar


def _racer(cache_dir: str, value_size: int, rounds: int,
           queue) -> None:
    """Hammer put/get on one (stage, fingerprint) pair; report failures."""
    try:
        expected = {"payload": list(range(value_size))}
        for _ in range(rounds):
            cache = ArtifactCache(cache_dir)  # fresh: no memory layer
            cache.put("stage", FP, expected, persist=True)
            status, value = ArtifactCache(cache_dir).get("stage", FP)
            # A concurrent writer may have replaced the file between our
            # put and get, but any observed hit must be COMPLETE and
            # equal (all writers store the same value); a miss is only
            # legal transiently and never a partial pickle.
            if status is not None and value != expected:
                queue.put(f"partial/garbled value observed: {status}")
                return
        queue.put(None)
    except BaseException as error:  # noqa: BLE001 - report, don't hang
        queue.put(f"{type(error).__name__}: {error}")


class TestCrossProcessRace:
    def test_two_processes_never_observe_partial_pickles(self, tmp_path):
        context = multiprocessing.get_context("fork")
        queue = context.Queue()
        workers = [
            context.Process(target=_racer,
                            args=(str(tmp_path), 20_000, 30, queue))
            for _ in range(2)]
        for worker in workers:
            worker.start()
        outcomes = [queue.get(timeout=120) for _ in workers]
        for worker in workers:
            worker.join(timeout=30)
        assert outcomes == [None, None]
        # The survivors on disk are exactly one complete entry (any
        # leftover .tmp.<pid> sidecar would be an atomicity bug).
        files = sorted(p.name for p in tmp_path.iterdir())
        assert files == [f"stage-{FP[:32]}.pkl"]
        with open(tmp_path / files[0], "rb") as handle:
            payload = pickle.load(handle)
        assert payload["fingerprint"] == FP
        assert payload["artifact"] == {"payload": list(range(20_000))}
