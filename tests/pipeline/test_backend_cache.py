"""Backend selection through the staged pipeline and its caches.

The propagation backend is part of the propagation stage's fingerprint
(namespace ``backend``), so artifacts computed by different backends
never alias in a shared :class:`ArtifactCache` — even though they are
equivalent — and everything downstream of propagation re-keys with it
while the topology/ixps stages stay shared.
"""

from __future__ import annotations

import pytest

from repro.bgp.propagation import BACKENDS
from repro.pipeline import ArtifactCache, ScenarioRun
from repro.runtime.batched import numpy_available
from repro.scenarios.spec import get_scenario
from repro.scenarios.workloads import scenario_run

requires_numpy = pytest.mark.skipif(
    not numpy_available(), reason="batched backend requires numpy")


def tiny_config():
    return get_scenario("europe2013").config("tiny")


class TestBackendFingerprints:
    def test_backend_salts_propagation_and_downstream(self):
        fingerprints = {
            backend: ScenarioRun(tiny_config(),
                                 backend=backend).fingerprints()
            for backend in ("frontier", "batched", "compiled")}
        pairs = [("frontier", "batched"), ("frontier", "compiled"),
                 ("batched", "compiled")]
        for left, right in pairs:
            fp_left, fp_right = fingerprints[left], fingerprints[right]
            # Upstream of propagation: shared.
            assert fp_left["topology"] == fp_right["topology"]
            assert fp_left["ixps"] == fp_right["ixps"]
            # Propagation and everything downstream: re-keyed.
            for stage in ("propagation", "collectors", "viewpoints",
                          "scenario", "connectivity", "inference",
                          "analyses"):
                assert fp_left[stage] != fp_right[stage], (left, right,
                                                           stage)

    def test_default_backend_is_frontier(self):
        run = ScenarioRun(tiny_config())
        assert run.backend == "frontier"
        assert run.fingerprints() == ScenarioRun(
            tiny_config(), backend="frontier").fingerprints()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown propagation backend"):
            ScenarioRun(tiny_config(), backend="warp-drive")

    def test_spec_can_pin_backend(self):
        pinned = get_scenario("europe2013").with_overrides(
            name="europe2013-batched", backend="batched")
        run = ScenarioRun(tiny_config(), scenario=pinned)
        assert run.backend == "batched"
        # Explicit argument wins over the spec pin.
        run = ScenarioRun(tiny_config(), scenario=pinned,
                          backend="frontier")
        assert run.backend == "frontier"


@requires_numpy
class TestBackendArtifactIsolation:
    def test_backends_never_share_cached_propagation_artifacts(self):
        """A batched run against a frontier-warmed cache recomputes
        propagation (and downstream) but reuses topology/ixps."""
        cache = ArtifactCache()
        frontier = ScenarioRun(tiny_config(), backend="frontier",
                               cache=cache)
        frontier.artifact("propagation")
        batched = ScenarioRun(tiny_config(), backend="batched", cache=cache)
        batched.artifact("propagation")
        statuses = batched.stage_statuses()
        assert statuses["topology"] == "memory"
        assert statuses["ixps"] == "memory"
        assert statuses["propagation"] == "computed"
        # Same backend again: full warm hit.
        warm = ScenarioRun(tiny_config(), backend="batched", cache=cache)
        warm.artifact("propagation")
        assert warm.stage_statuses()["propagation"] == "memory"

    def test_backend_threaded_into_scenario_and_engine(self):
        run = ScenarioRun(tiny_config(), backend="batched")
        scenario = run.scenario()
        assert scenario.backend == "batched"
        assert scenario.context.backend == "batched"
        assert scenario.make_engine().backend == "batched"

    @pytest.mark.parametrize("backend", ["batched", "compiled"])
    def test_vector_pipeline_results_equal_frontier(self, backend):
        cache = ArtifactCache()
        frontier = ScenarioRun(tiny_config(), backend="frontier",
                               cache=cache).inference()
        vectorized = ScenarioRun(tiny_config(), backend=backend,
                                 cache=cache).inference()
        assert frontier.all_links() == vectorized.all_links()
        assert frontier.links_by_ixp() == vectorized.links_by_ixp()

    @pytest.mark.parametrize("backend", ["batched", "compiled"])
    def test_sharded_propagation_identical_to_single_process(self, backend):
        single = scenario_run("tiny", backend=backend,
                              cache=ArtifactCache())
        sharded = scenario_run("tiny", backend=backend, workers=2,
                               cache=ArtifactCache())
        assert single.inference().all_links() == \
            sharded.inference().all_links()
        # Worker counts are an execution detail: fingerprints agree.
        assert single.fingerprints() == sharded.fingerprints()


def test_backends_constant_matches_engine():
    assert BACKENDS == ("frontier", "batched", "compiled", "reference")
