"""Property-based tests (hypothesis) on core data structures and invariants."""

from hypothesis import given, settings, strategies as st

from repro.bgp.asn import Private16BitMapper
from repro.bgp.attributes import ASPath
from repro.bgp.communities import Community
from repro.bgp.prefix import Prefix
from repro.core.reachability import (
    MemberReachability,
    PolicyObservation,
    infer_links,
    merge_observations,
)
from repro.core.query_cost import QueryCostModel
from repro.ixp.community_schemes import CommunityScheme, RSAction

asns16 = st.integers(min_value=1, max_value=65000)
member_sets = st.sets(asns16, min_size=2, max_size=12)


# ---------------------------------------------------------------------------
# Prefix properties
# ---------------------------------------------------------------------------

@given(st.integers(min_value=0, max_value=0xFFFFFFFF),
       st.integers(min_value=0, max_value=32))
def test_prefix_parse_roundtrip(network, length):
    prefix = Prefix(network, length)
    assert Prefix.parse(str(prefix)) == prefix


@given(st.integers(min_value=0, max_value=0xFFFFFFFF),
       st.integers(min_value=1, max_value=32))
def test_prefix_supernet_contains_subnet(network, length):
    prefix = Prefix(network, length)
    assert prefix.supernet().contains(prefix)


@given(st.integers(min_value=0, max_value=0xFFFFFFFF),
       st.integers(min_value=0, max_value=31))
def test_prefix_subnets_partition(network, length):
    prefix = Prefix(network, length)
    low, high = prefix.subnets()
    assert prefix.contains(low) and prefix.contains(high)
    assert not low.overlaps(high)
    assert low.num_addresses + high.num_addresses == prefix.num_addresses


# ---------------------------------------------------------------------------
# Community properties
# ---------------------------------------------------------------------------

@given(st.integers(min_value=0, max_value=0xFFFF),
       st.integers(min_value=0, max_value=0xFFFF))
def test_community_string_and_int_roundtrip(high, low):
    community = Community(high, low)
    assert Community.parse(str(community)) == community
    assert Community.from_int(community.value) == community


# ---------------------------------------------------------------------------
# AS path properties
# ---------------------------------------------------------------------------

@given(st.lists(st.integers(min_value=1, max_value=400000), min_size=1, max_size=12))
def test_aspath_dedup_idempotent_and_links_symmetric(asns):
    path = ASPath(asns)
    deduped = path.deduplicated()
    assert deduped.deduplicated() == deduped
    for a, b in path.links():
        assert a <= b


@given(st.lists(st.integers(min_value=1, max_value=60000), min_size=2, max_size=8),
       st.integers(min_value=1, max_value=60000))
def test_aspath_prepend_preserves_origin(asns, new_head):
    path = ASPath(asns)
    assert path.prepend(new_head).origin_asn == path.origin_asn
    assert path.prepend(new_head).first_hop == new_head


# ---------------------------------------------------------------------------
# Community scheme properties: encode/classify duality
# ---------------------------------------------------------------------------

scheme_strategy = st.sampled_from([
    CommunityScheme.rs_asn_style("DE-CIX", 6695),
    CommunityScheme.offset_style("ECIX", 9033),
    CommunityScheme.rs_asn_style("PLIX", 8545),
])


@given(scheme_strategy, st.sets(asns16, min_size=0, max_size=8))
def test_scheme_all_except_roundtrip(scheme, excluded):
    communities = scheme.encode_policy("all-except", sorted(excluded))
    classified = scheme.classify_set(communities)
    decoded_excludes = {c.peer_asn for _, c in classified
                        if c.action is RSAction.EXCLUDE}
    # The ALL marker may collide with an EXCLUDE of the RS ASN itself; skip
    # that pathological value.
    expected = {asn for asn in excluded if asn != scheme.rs_asn}
    assert decoded_excludes >= expected
    assert not any(c.action is RSAction.NONE for _, c in classified
                   if scheme.rs_asn not in excluded)


@given(scheme_strategy, st.sets(asns16, min_size=1, max_size=8))
def test_scheme_none_except_roundtrip(scheme, included):
    communities = scheme.encode_policy("none-except", sorted(included))
    classified = scheme.classify_set(communities)
    assert any(c.action is RSAction.NONE for _, c in classified)
    decoded_includes = {c.peer_asn for _, c in classified
                        if c.action is RSAction.INCLUDE}
    assert decoded_includes >= {asn for asn in included
                                if asn != scheme.rs_asn and asn != 0}


@given(st.sets(st.integers(min_value=70000, max_value=4_000_000_000),
               min_size=1, max_size=20))
def test_private_mapper_bijective(asns):
    mapper = Private16BitMapper()
    aliases = [mapper.register(asn) for asn in sorted(asns)]
    assert len(set(aliases)) == len(set(asns))
    for asn in asns:
        assert mapper.resolve(mapper.alias_for(asn)) == asn


# ---------------------------------------------------------------------------
# Reachability / inference invariants
# ---------------------------------------------------------------------------

@given(member_sets, st.data())
def test_inferred_links_are_reciprocal_and_within_members(members, data):
    members = sorted(members)
    reachabilities = {}
    for asn in members:
        mode = data.draw(st.sampled_from(["all-except", "none-except"]))
        listed = data.draw(st.sets(st.sampled_from(members), max_size=len(members)))
        reachabilities[asn] = MemberReachability(
            member_asn=asn, ixp_name="X", mode=mode,
            listed=frozenset(listed))
    links = infer_links(reachabilities, members)
    for a, b in links:
        assert a < b
        assert a in members and b in members
        assert reachabilities[a].allows(b)
        assert reachabilities[b].allows(a)
    # Completeness: every reciprocal-allow pair is present.
    for i, a in enumerate(members):
        for b in members[i + 1:]:
            if reachabilities[a].allows(b) and reachabilities[b].allows(a):
                assert (a, b) in links


@given(member_sets, st.data())
@settings(max_examples=50)
def test_merged_reachability_is_intersection(members, data):
    members = sorted(members)
    member_asn = members[0]
    observations = []
    num_observations = data.draw(st.integers(min_value=1, max_value=4))
    for index in range(num_observations):
        mode = data.draw(st.sampled_from(["all-except", "none-except"]))
        listed = data.draw(st.sets(st.sampled_from(members), max_size=len(members)))
        observations.append(PolicyObservation(
            member_asn=member_asn, ixp_name="X",
            prefix=Prefix(0x0B000000 + index * 256, 24),
            mode=mode, listed=frozenset(listed)))
    merged = merge_observations(observations, members)
    expected = None
    for observation in observations:
        allowed = observation.allowed(members)
        expected = allowed if expected is None else expected & allowed
    assert merged.allowed_members(members) == expected


# ---------------------------------------------------------------------------
# Query-cost invariants
# ---------------------------------------------------------------------------

@given(st.dictionaries(asns16, st.integers(min_value=1, max_value=30),
                       min_size=1, max_size=15))
@settings(max_examples=40)
def test_query_plan_meets_targets_and_never_exceeds_sampled_cost(prefix_counts):
    announced = {}
    counter = 0
    shared = Prefix(0x0B000000, 24)
    for asn, count in prefix_counts.items():
        prefixes = [shared]
        for _ in range(count - 1):
            counter += 1
            prefixes.append(Prefix(0x0C000000 + counter * 256, 24))
        announced[asn] = prefixes
    model = QueryCostModel("X", announced)
    plan = model.build_plan()
    for asn, target in plan.targets.items():
        assert plan.covered[asn] >= target
    breakdown = model.cost_breakdown()
    assert breakdown.optimised <= breakdown.sampled <= breakdown.exhaustive
    assert breakdown.with_passive <= breakdown.optimised
