"""Shared fixtures: a small end-to-end scenario built once per session."""

from __future__ import annotations

import pytest

from repro.scenarios.europe2013 import build_europe2013
from repro.scenarios.workloads import small_scenario_config


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens", action="store_true", default=False,
        help="regenerate the tests/goldens/*.json scenario fixtures "
             "instead of failing on a mismatch")


@pytest.fixture(scope="session")
def small_scenario():
    """The small synthetic Europe-2013 scenario (built once)."""
    return build_europe2013(small_scenario_config(seed=20130501))


@pytest.fixture(scope="session")
def inference_result(small_scenario):
    """Full inference (passive + active) over the small scenario."""
    return small_scenario.run_inference()


@pytest.fixture(scope="session")
def connectivity_reports(small_scenario):
    """Connectivity discovery reports for the small scenario."""
    return small_scenario.discover_connectivity()
