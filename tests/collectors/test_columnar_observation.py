"""Differential harness: columnar observation plane vs object oracle.

The columnar collection pipeline (``RibEntryTable``-backed
``CollectorArchive``, vantage-point ``export_rows``, the propagation
``ObservationIndex`` fast paths and bulk looking-glass loads) must be
*bit-identical* to the retained object implementations — same entries,
same orderings, same RNG draws, same query tables — on generator-built
internets across randomized regime knobs and every propagation backend.
The whole module also runs under the CI ``REPRO_NO_NUMBA`` matrix leg,
which pins the pure-numpy compiled path the same way.
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.bgp.propagation import OriginSpec
from repro.collectors.archive import CollectorArchive, MeasurementWindow
from repro.collectors.route_collector import RouteCollector
from repro.collectors.vantage_point import FeedType, VantagePoint
from repro.ixp.looking_glass import ASLookingGlass, LGRoute
from repro.runtime.batched import numpy_available
from repro.runtime.context import PipelineContext
from repro.topology.generator import GeneratorConfig, InternetGenerator

requires_numpy = pytest.mark.skipif(
    not numpy_available(), reason="columnar plane requires numpy")

PROPAGATION_BACKENDS = ("frontier", "batched", "compiled")


def _random_generator_config(rng) -> GeneratorConfig:
    """A seeded random regime (same spirit as the backend differential
    suite): scale plus hypergiant / peering knobs."""
    return GeneratorConfig(
        seed=rng.randrange(1 << 30),
        scale=rng.uniform(0.05, 0.09),
        ixp_member_scale=rng.uniform(0.04, 0.08),
        sibling_pair_fraction=rng.choice([0.0, 0.01, 0.05]),
        num_hypergiants=rng.randint(2, 5),
        hypergiant_ixp_presence=rng.uniform(0.3, 1.0),
        bilateral_peer_range=(1, 1 + rng.randint(0, 5)),
        content_multiplier=rng.choice([0.8, 1.0, 1.6]),
    )


def _build_observation(seed: int, backend: str):
    """A propagated random internet plus vantage-point and validation
    host draws: the inputs both collection implementations consume."""
    rng = random.Random(seed)
    config = _random_generator_config(rng)
    internet = InternetGenerator(config).generate()
    graph = internet.graph
    origin_pool = sorted(node.asn for node in graph.nodes() if node.prefixes)
    origins = [OriginSpec(asn=asn, prefixes=list(graph.prefixes_of(asn)))
               for asn in sorted(rng.sample(origin_pool,
                                            min(20, len(origin_pool))))]
    asns = sorted(graph.asns())
    vantage_asns = sorted(rng.sample(asns, min(12, len(asns))))
    hosts = sorted(rng.sample(asns, min(6, len(asns))))
    record_at = sorted(set(vantage_asns) | set(hosts))
    context = PipelineContext.from_graph(graph, backend=backend)
    engine = context.engine(record_at=record_at,
                            record_alternatives_at=hosts)
    propagation = engine.propagate(origins)
    feeds = [(asn, FeedType.FULL if index % 3 == 0
              else FeedType.CUSTOMER_ONLY)
             for index, asn in enumerate(vantage_asns)]
    return propagation, feeds, hosts


def _build_archive(propagation, feeds, seed: int, columnar,
                   transient_fraction: float = 0.1) -> CollectorArchive:
    """One archive over two collectors, like the scenario layer builds —
    fresh VantagePoint objects per archive so nothing is shared."""
    route_views = RouteCollector(name="route-views")
    ripe_ris = RouteCollector(name="rrc00")
    for index, (asn, feed_type) in enumerate(feeds):
        collector = route_views if index % 2 == 0 else ripe_ris
        collector.add_vantage_point(VantagePoint(asn=asn,
                                                 feed_type=feed_type))
    archive = CollectorArchive([route_views, ripe_ris],
                               window=MeasurementWindow(num_days=5),
                               seed=seed, columnar=columnar)
    archive.collect(propagation, transient_fraction=transient_fraction)
    return archive


def entry_key(entry):
    """Full field-wise signature of a RIB entry."""
    return (entry.peer_asn, str(entry.prefix), entry.as_path.asns,
            tuple(sorted(c.value for c in entry.communities)),
            entry.collector, entry.timestamp)


def entry_keys(entries):
    return [entry_key(entry) for entry in entries]


def lg_table(lg: ASLookingGlass):
    """Order-sensitive query-table signature across every prefix."""
    rows = []
    for prefix in lg.prefixes():
        for route in lg.show_ip_bgp_prefix(prefix):
            rows.append((str(prefix), route.as_path,
                         tuple(sorted(c.value for c in route.communities)),
                         route.best, route.learned_from))
    lg.counter.reset()
    return rows


# -- archive: columnar vs object oracle ---------------------------------------


@requires_numpy
@pytest.mark.parametrize("backend", PROPAGATION_BACKENDS)
@pytest.mark.parametrize("seed", (2013, 8451))
def test_columnar_archive_matches_object_oracle(seed, backend):
    """Entries, per-day dumps, stable/clean-stable selections, synthetic
    updates and visible links are field-identical and order-identical
    between the column store and the object archive, on every
    propagation backend."""
    propagation, feeds, _hosts = _build_observation(seed, backend)
    columnar = _build_archive(propagation, feeds, seed, columnar=None)
    oracle = _build_archive(propagation, feeds, seed, columnar=False)
    assert columnar._table is not None, "columnar collect did not engage"
    assert oracle._table is None

    assert entry_keys(columnar.all_entries()) == \
        entry_keys(oracle.all_entries())
    for day in columnar.window.days():
        assert entry_keys(columnar.dump_for_day(day)) == \
            entry_keys(oracle.dump_for_day(day)), day
    for min_days in (1, 2, 3, 99):
        assert entry_keys(columnar.stable_entries(min_days)) == \
            entry_keys(oracle.stable_entries(min_days)), min_days
        assert entry_keys(columnar.clean_stable_entries(min_days)) == \
            entry_keys(oracle.clean_stable_entries(min_days)), min_days
    assert [(u.prefix, u.as_path.asns, u.timestamp, u.peer_asn)
            for u in columnar.updates()] == \
        [(u.prefix, u.as_path.asns, u.timestamp, u.peer_asn)
         for u in oracle.updates()]
    assert columnar.visible_as_links() == oracle.visible_as_links()


@requires_numpy
@pytest.mark.parametrize("seed", (31337,))
def test_columnar_archive_matches_object_fallback_path(seed, monkeypatch):
    """When the propagation result cannot serve columns (the no-numpy
    object-fragment path), the columnar archive transparently falls back
    to the object collect and still matches the oracle."""
    propagation, feeds, _hosts = _build_observation(seed, "frontier")
    monkeypatch.setattr(type(propagation), "iter_best_columns_at",
                        lambda self, asn: None)
    fallback = _build_archive(propagation, feeds, seed, columnar=None)
    oracle = _build_archive(propagation, feeds, seed, columnar=False)
    assert fallback._table is None, "fallback should demote to objects"
    assert entry_keys(fallback.all_entries()) == \
        entry_keys(oracle.all_entries())
    assert entry_keys(fallback.clean_stable_entries(2)) == \
        entry_keys(oracle.clean_stable_entries(2))


@requires_numpy
def test_columnar_archive_pickle_roundtrip_preserves_entries():
    """Pickled archives reload with identical entries and stable
    selections (lazy row views and interners rebuild)."""
    propagation, feeds, _hosts = _build_observation(424242, "frontier")
    archive = _build_archive(propagation, feeds, 424242, columnar=None)
    clone = pickle.loads(pickle.dumps(archive))
    assert entry_keys(clone.all_entries()) == \
        entry_keys(archive.all_entries())
    assert entry_keys(clone.clean_stable_entries(2)) == \
        entry_keys(archive.clean_stable_entries(2))
    assert clone.visible_as_links() == archive.visible_as_links()


@requires_numpy
def test_shared_aspath_identity_feeds_passive_memo():
    """Within the column store one interned ``ASPath`` object backs every
    entry with that path — the identity-keyed memo in the passive plane
    depends on exactly this sharing."""
    propagation, feeds, _hosts = _build_observation(77, "frontier")
    archive = _build_archive(propagation, feeds, 77, columnar=None)
    by_asns = {}
    for entry in archive.all_entries():
        seen = by_asns.setdefault(entry.as_path.asns, entry.as_path)
        assert seen is entry.as_path
    # The memoised clean-stable list is returned as the same object.
    assert archive.clean_stable_entries(2) is archive.clean_stable_entries(2)


# -- looking glasses: fused bulk loads vs route-by-route ----------------------


@requires_numpy
@pytest.mark.parametrize("backend", PROPAGATION_BACKENDS)
@pytest.mark.parametrize("seed", (4242,))
def test_bulk_lg_loads_match_route_by_route(seed, backend):
    """A validation LG fed by ``load_route_blocks`` from
    ``observation_groups_at`` answers every query identically to one fed
    route-by-route from ``all_paths`` — the exact object loop the fused
    scenario stage replaced."""
    propagation, _feeds, hosts = _build_observation(seed, backend)
    checked = 0
    for asn in hosts:
        groups = propagation.observation_groups_at(asn)
        assert groups is not None, "block-backed result must serve groups"
        fused = ASLookingGlass(asn=asn, display_all_paths=True)
        for origin, block, rows in groups:
            prefixes = propagation.origin_spec(origin).prefixes
            if prefixes:
                fused.load_route_blocks(prefixes, block, rows)
        oracle = ASLookingGlass(asn=asn, display_all_paths=True)
        for origin in propagation.origins():
            routes = propagation.all_paths(asn, origin)
            if not routes:
                continue
            prefixes = propagation.origin_spec(origin).prefixes
            best_key = min(range(len(routes)),
                           key=lambda i: (routes[i].provenance,
                                          len(routes[i].path)))
            for prefix in prefixes:
                for index, route in enumerate(routes):
                    oracle.load_route(LGRoute(
                        prefix=prefix, as_path=route.path,
                        communities=route.communities,
                        best=(index == best_key),
                        learned_from=route.learned_from))
        assert fused.prefixes() == oracle.prefixes(), asn
        assert lg_table(fused) == lg_table(oracle), asn
        checked += len(fused.prefixes())
    assert checked, "differential never exercised a populated LG"


@requires_numpy
def test_bulk_lg_interleaves_with_eager_loads():
    """Bulk groups flush correctly when eager operations interleave:
    load_route after load_route_blocks, then mark_best_paths."""
    propagation, _feeds, hosts = _build_observation(99, "frontier")
    asn = hosts[0]
    groups = propagation.observation_groups_at(asn)
    assert groups is not None
    lg = ASLookingGlass(asn=asn, display_all_paths=True)
    oracle = ASLookingGlass(asn=asn, display_all_paths=True)
    extra = LGRoute(prefix=propagation.origin_spec(
        propagation.origins()[0]).prefixes[0],
        as_path=(65001, 65000), best=False)
    for origin, block, rows in groups:
        prefixes = propagation.origin_spec(origin).prefixes
        if prefixes:
            lg.load_route_blocks(prefixes, block, rows)
            for prefix in prefixes:
                for index, row in enumerate(rows):
                    oracle.load_route(LGRoute(
                        prefix=prefix, as_path=block.path(row),
                        communities=block.communities_at(row),
                        best=(index == 0),
                        learned_from=block.learned_from_at(row)))
    lg.load_route(extra)
    oracle.load_route(extra)
    assert not lg._groups, "eager load must flush pending groups"
    lg.mark_best_paths()
    oracle.mark_best_paths()
    assert lg_table(lg) == lg_table(oracle)


# -- propagation fast paths ----------------------------------------------------


@requires_numpy
@pytest.mark.parametrize("backend", PROPAGATION_BACKENDS)
def test_observation_index_fast_paths_match_fold(backend):
    """``all_paths``/``best_route`` served from the ObservationIndex are
    identical — as objects, not just values — to the folded-dict answers
    the object walk produces."""
    propagation, _feeds, hosts = _build_observation(555, backend)
    origins = propagation.origins()
    for asn in hosts:
        for origin in origins:
            fast = propagation.all_paths(asn, origin)
            propagation._ensure_indexed()
            index = propagation._observation_index()
            assert index is not None
            slow_best = propagation._best.get(asn, {}).get(origin)
            assert propagation.best_route(asn, origin) is slow_best
            offered = propagation._alternatives.get(asn, {}).get(origin)
            if offered is None:
                expected = [slow_best] if slow_best is not None else []
            else:
                expected = sorted(
                    offered, key=lambda r: (r.provenance, len(r.path),
                                            r.learned_from or -1))
            assert [id(r) for r in fast] == [id(r) for r in expected], \
                (asn, origin)
