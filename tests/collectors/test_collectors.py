"""Tests for vantage points, route collectors and archives."""

import pytest

from repro.bgp.communities import Community
from repro.bgp.policy import Relationship
from repro.bgp.prefix import Prefix
from repro.bgp.propagation import (
    Adjacency,
    OriginSpec,
    PropagationEngine,
    bidirectional_adjacencies,
)
from repro.collectors.archive import CollectorArchive, MeasurementWindow
from repro.collectors.route_collector import RouteCollector
from repro.collectors.vantage_point import FeedType, VantagePoint


@pytest.fixture
def propagation():
    # 10 customer of 20; 20 peers with 30 over a route server (communities);
    # 30 has customer 40 which feeds a collector.
    adjacencies = []
    adjacencies.extend(bidirectional_adjacencies(10, 20, Relationship.PROVIDER))
    adjacencies.extend(bidirectional_adjacencies(40, 30, Relationship.PROVIDER))
    tag = frozenset({Community(6695, 6695)})
    adjacencies.append(Adjacency(source=20, target=30,
                                 relationship=Relationship.RS_PEER,
                                 communities=tag))
    adjacencies.append(Adjacency(source=30, target=20,
                                 relationship=Relationship.RS_PEER))
    engine = PropagationEngine(adjacencies)
    origins = [OriginSpec(asn=10, prefixes=[Prefix.parse("11.0.0.0/24")]),
               OriginSpec(asn=30, prefixes=[Prefix.parse("11.0.3.0/24")]),
               OriginSpec(asn=40, prefixes=[Prefix.parse("11.0.4.0/24")])]
    return engine.propagate(origins)


class TestVantagePoint:
    def test_customer_only_feed_excludes_peer_routes(self, propagation):
        vp = VantagePoint(asn=30, feed_type=FeedType.CUSTOMER_ONLY)
        entries = vp.exported_routes(propagation)
        origins = {entry.as_path.origin_asn for entry in entries}
        # 30 learned 10's route from an RS peer: not exported on a peer-like feed.
        assert 10 not in origins
        assert 40 in origins and 30 in origins

    def test_full_feed_includes_everything(self, propagation):
        vp = VantagePoint(asn=30, feed_type=FeedType.FULL)
        origins = {e.as_path.origin_asn for e in vp.exported_routes(propagation)}
        assert {10, 30, 40} <= origins

    def test_communities_survive_to_the_feed(self, propagation):
        vp = VantagePoint(asn=40, feed_type=FeedType.FULL)
        entries = {e.as_path.origin_asn: e for e in vp.exported_routes(propagation)}
        # 40 gets 10's route through its provider 30, which learned it via
        # the route server: the RS community must still be attached.
        assert Community(6695, 6695) in entries[10].communities


class TestRouteCollector:
    def test_table_dump_and_links(self, propagation):
        collector = RouteCollector(name="route-views")
        collector.add_vantage_point(VantagePoint(asn=40, feed_type=FeedType.FULL))
        dump = collector.table_dump(propagation)
        assert dump and all(entry.collector == "route-views" for entry in dump)
        links = collector.visible_as_links(propagation)
        assert (30, 40) in links and (20, 30) in links
        assert collector.peer_asns() == [40]


class TestCollectorArchive:
    def make_archive(self, propagation, transient=0.0, days=3):
        collector = RouteCollector(name="rrc00")
        collector.add_vantage_point(VantagePoint(asn=40, feed_type=FeedType.FULL))
        archive = CollectorArchive([collector],
                                   window=MeasurementWindow(num_days=days))
        archive.collect(propagation, transient_fraction=transient)
        return archive

    def test_window_days(self):
        assert MeasurementWindow(start_day=1, num_days=3).days() == [1, 2, 3]

    def test_daily_dumps_cover_window(self, propagation):
        archive = self.make_archive(propagation)
        assert len(archive.dump_for_day(1)) == len(archive.dump_for_day(3))
        assert len(archive.all_entries()) == 3 * len(archive.dump_for_day(1))

    def test_stable_entries_deduplicate(self, propagation):
        archive = self.make_archive(propagation)
        stable = archive.stable_entries(min_days=2)
        assert len(stable) == len(archive.dump_for_day(1))

    def test_transient_entries_filtered(self, propagation):
        archive = self.make_archive(propagation, transient=0.5)
        all_keys = {(e.peer_asn, e.prefix, e.as_path.asns)
                    for e in archive.all_entries()}
        stable_keys = {(e.peer_asn, e.prefix, e.as_path.asns)
                       for e in archive.stable_entries(min_days=2)}
        assert stable_keys < all_keys

    def test_clean_stable_entries_pass_filters(self, propagation):
        archive = self.make_archive(propagation, transient=0.3)
        assert all(e.is_clean() for e in archive.clean_stable_entries())

    def test_updates_synthesised(self, propagation):
        archive = self.make_archive(propagation)
        assert archive.updates()
        assert all(u.peer_asn == 40 for u in archive.updates())

    def test_visible_links(self, propagation):
        archive = self.make_archive(propagation)
        assert (20, 30) in archive.visible_as_links()
