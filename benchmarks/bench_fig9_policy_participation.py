"""Figure 9: route-server participation by self-reported peering policy."""

from repro.analysis.policies import PolicyAnalysis


def test_participation_by_policy(scenario, benchmark):
    analysis = PolicyAnalysis(scenario.graph, scenario.peeringdb)
    ixp_names = list(scenario.ixps)

    participation = benchmark(analysis.participation_by_policy, ixp_names)

    print("\nFigure 9 — RS participation by self-reported peering policy")
    print(f"  {'policy':<12} {'on a RS':>8} {'not on RS':>10} {'rate':>7}")
    for row in participation.as_rows():
        print(f"  {row['policy']:<12} {row['participates']:>8} "
              f"{row['does_not']:>10} {row['rate']:>6.1%}")
    print("  (paper: open 92%, selective 75%, restrictive 43%)")

    rates = {row["policy"]: row["rate"] for row in participation.as_rows()}
    if "open" in rates and "selective" in rates:
        assert rates["open"] >= rates["selective"]
    if "selective" in rates and "restrictive" in rates:
        assert rates["selective"] >= rates["restrictive"]
