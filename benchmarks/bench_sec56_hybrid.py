"""Section 5.6: hybrid p2p/p2c relationships among inferred RS links."""

from repro.analysis.hybrid import HybridRelationshipAnalysis


def test_hybrid_relationships(scenario, reachability, benchmark):
    graph = scenario.graph
    truth_hybrid = set()
    for pairs in scenario.internet.hybrid_pairs.values():
        truth_hybrid |= pairs

    analysis = HybridRelationshipAnalysis(
        graph.relationship,
        hybrid_evidence=lambda link: link in truth_hybrid)

    report = benchmark(analysis.analyse_matrix, reachability)

    print("\nSection 5.6 — hybrid relationships")
    print(f"  inferred RS links that overlap a c2p relationship: "
          f"{report.num_candidates} (paper: 1,230)")
    print(f"  confirmed location-specific hybrid relationships:  "
          f"{report.num_confirmed} (paper: 202 of 440 checked)")

    assert report.num_candidates >= 0
    for candidate in report.candidates:
        assert graph.has_link(*candidate.link)
