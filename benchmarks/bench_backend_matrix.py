"""Backend matrix: frontier vs batched propagation, timed and verified.

Two things at once, per scenario size:

* **equivalence** — the batched backend's recorded fragments must be
  bit-identical to the frontier engine's (content and order, best and
  offered routes) on the measurement surface the scenario actually
  records at;
* **speed** — the same propagation workload is timed per backend, so
  the trajectory JSON captures the batched engine's speedup next to
  every other bench.

`benchmarks/run_all.py` additionally records per-backend wall times for
every registered scenario in the ``backend_matrix`` section of
``BENCH_<date>.json``.
"""

from __future__ import annotations

import pytest

from repro.bgp.propagation import OriginSpec
from repro.pipeline import ArtifactCache, ScenarioRun
from repro.runtime.batched import numpy_available
from repro.scenarios.spec import get_scenario

requires_numpy = pytest.mark.skipif(
    not numpy_available(), reason="batched backend requires numpy")


def propagation_workload(size: str):
    """The scenario's real propagation workload: its context, every
    prefix-announcing origin, and the recorded observer surface."""
    spec = get_scenario("europe2013")
    run = ScenarioRun(spec.config(size), cache=ArtifactCache())
    scenario = run.scenario()
    graph = scenario.graph
    origins = [OriginSpec(asn=node.asn, prefixes=list(node.prefixes))
               for node in graph.nodes() if node.prefixes]
    observers = [vp.asn for vp in scenario.vantage_points]
    alternatives = [lg.asn for lg in scenario.validation_lgs]
    return scenario.context, origins, observers, alternatives


def run_backend(context, origins, observers, alternatives, backend):
    context.clear_propagation_cache()
    engine = context.engine(record_at=observers,
                            record_alternatives_at=alternatives,
                            backend=backend)
    return engine.batch_fragments(origins)


def fragment_key(routes):
    return [(r.asn, r.path, r.communities, r.provenance, r.learned_from)
            for r in routes]


@requires_numpy
@pytest.mark.parametrize("size", ["tiny", "bench"])
def test_batched_fragments_bit_identical(size):
    """Acceptance: batched == frontier on the scenario's full origin set
    at tiny and bench sizes (exact fragments, best and offered)."""
    workload = propagation_workload(size)
    frontier = run_backend(*workload, backend="frontier")
    batched = run_backend(*workload, backend="batched")
    assert len(frontier) == len(batched)
    for got_f, got_b in zip(frontier, batched):
        assert fragment_key(got_f[0]) == fragment_key(got_b[0])
        assert fragment_key(got_f[1]) == fragment_key(got_b[1])


@pytest.mark.parametrize("backend", ["frontier", "batched"])
def test_propagation_backend_throughput(benchmark, backend):
    """Bench-size propagation, one timed run per backend (compare the
    two rows in the benchmark table / BENCH trajectory)."""
    if backend == "batched" and not numpy_available():
        pytest.skip("batched backend requires numpy")
    context, origins, observers, alternatives = propagation_workload("bench")
    # Warm the per-topology plan/union tables so the timed rounds
    # measure sweeps, exactly like a warm scenario re-run.
    run_backend(context, origins, observers, alternatives, backend)

    def propagate():
        return run_backend(context, origins, observers, alternatives,
                           backend)

    fragments = benchmark.pedantic(propagate, rounds=3, iterations=1)
    assert len(fragments) == len(origins)
    assert any(best for best, _offered in fragments)
