"""Backend matrix: frontier vs batched vs compiled, timed and verified.

Two things at once, per scenario size:

* **equivalence** — every vectorized backend's recorded fragments must
  be bit-identical to the frontier engine's (content and order, best
  and offered routes) on the measurement surface the scenario actually
  records at;
* **speed** — the same propagation workload is timed per backend, both
  engine-level (fragments materialised) and as a **raw sweep** (the
  propagator relaxation alone), so the trajectory JSON captures the
  fused compiled kernel's speedup next to every other bench.

`benchmarks/run_all.py` additionally records per-backend wall times for
every registered scenario in the ``backend_matrix`` section of
``BENCH_<date>.json``, including a workers x backend scaling row.
"""

from __future__ import annotations

import pytest

from repro.bgp.propagation import BATCH_SIZE, OriginSpec
from repro.pipeline import ArtifactCache, ScenarioRun
from repro.runtime.batched import numpy_available
from repro.scenarios.spec import get_scenario

requires_numpy = pytest.mark.skipif(
    not numpy_available(), reason="vectorized backends require numpy")

VECTOR_BACKENDS = ("batched", "compiled")


def propagation_workload(size: str):
    """The scenario's real propagation workload: its context, every
    prefix-announcing origin, and the recorded observer surface."""
    spec = get_scenario("europe2013")
    run = ScenarioRun(spec.config(size), cache=ArtifactCache())
    scenario = run.scenario()
    graph = scenario.graph
    origins = [OriginSpec(asn=node.asn, prefixes=list(node.prefixes))
               for node in graph.nodes() if node.prefixes]
    observers = [vp.asn for vp in scenario.vantage_points]
    alternatives = [lg.asn for lg in scenario.validation_lgs]
    return scenario.context, origins, observers, alternatives


def run_backend(context, origins, observers, alternatives, backend):
    context.clear_propagation_cache()
    engine = context.engine(record_at=observers,
                            record_alternatives_at=alternatives,
                            backend=backend)
    return engine.batch_fragments(origins)


def fragment_key(routes):
    return [(r.asn, r.path, r.communities, r.provenance, r.learned_from)
            for r in routes]


@requires_numpy
@pytest.mark.parametrize("backend", VECTOR_BACKENDS)
@pytest.mark.parametrize("size", ["tiny", "bench"])
def test_vector_fragments_bit_identical(size, backend):
    """Acceptance: each vectorized backend == frontier on the scenario's
    full origin set at tiny and bench sizes (exact fragments, best and
    offered)."""
    workload = propagation_workload(size)
    frontier = run_backend(*workload, backend="frontier")
    vector = run_backend(*workload, backend=backend)
    assert len(frontier) == len(vector)
    for got_f, got_v in zip(frontier, vector):
        assert fragment_key(got_f[0]) == fragment_key(got_v[0])
        assert fragment_key(got_f[1]) == fragment_key(got_v[1])


@pytest.mark.parametrize("backend", ["frontier", "batched", "compiled"])
def test_propagation_backend_throughput(benchmark, backend):
    """Bench-size propagation, one timed run per backend (compare the
    three rows in the benchmark table / BENCH trajectory)."""
    if backend != "frontier" and not numpy_available():
        pytest.skip("vectorized backends require numpy")
    context, origins, observers, alternatives = propagation_workload("bench")
    # Warm the per-topology plan/union tables so the timed rounds
    # measure sweeps, exactly like a warm scenario re-run.
    run_backend(context, origins, observers, alternatives, backend)

    def propagate():
        return run_backend(context, origins, observers, alternatives,
                           backend)

    fragments = benchmark.pedantic(propagate, rounds=3, iterations=1)
    assert len(fragments) == len(origins)
    assert any(best for best, _offered in fragments)


@pytest.mark.parametrize("backend", ["frontier", "batched", "compiled"])
def test_raw_propagation_sweep(benchmark, backend):
    """Bench-size raw relaxation sweep — no fragment materialisation,
    fresh propagator per round.  The compiled/frontier ratio of these
    rows is the fused kernel's headline speedup (the >=3x target)."""
    if backend != "frontier" and not numpy_available():
        pytest.skip("vectorized backends require numpy")
    context, origins, _observers, _alternatives = propagation_workload(
        "bench")
    index, bags, plan = context.index, context.bags, context.plan
    origin_nodes = [index.id_of[o.asn] for o in origins
                    if o.asn in index.id_of]
    empty_bags = [bags.EMPTY] * len(origin_nodes)

    def sweep():
        if backend == "frontier":
            from repro.runtime.frontier import FrontierPropagator
            from repro.runtime.stores import PathStore
            propagator = FrontierPropagator(index, PathStore(), bags)
            for node in origin_nodes:
                propagator.run(node, bags.EMPTY)
            return len(origin_nodes)
        if backend == "compiled":
            from repro.runtime.compiled import (
                CompiledPropagator,
                compiled_batch_size,
            )
            propagator = CompiledPropagator(plan, bags)
            batch = compiled_batch_size(plan)
        else:
            from repro.runtime.batched import BatchedPropagator
            propagator = BatchedPropagator(plan, bags)
            batch = BATCH_SIZE
        for start in range(0, len(origin_nodes), batch):
            propagator.run_batch(origin_nodes[start:start + batch],
                                 empty_bags[start:start + batch],
                                 frozenset())
        return len(origin_nodes)

    sweep()  # warmup: page-in, allocator steady state
    swept = benchmark.pedantic(sweep, rounds=3, iterations=1)
    assert swept == len(origin_nodes)
