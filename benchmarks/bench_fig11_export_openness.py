"""Figure 11: export openness (fraction of members allowed) by policy."""

from repro.analysis.policies import PolicyAnalysis


def test_export_openness(scenario, reachability, benchmark):
    analysis = PolicyAnalysis(scenario.graph, scenario.peeringdb)
    members = {name: scenario.graph.rs_members_of_ixp(name)
               for name in reachability.planes}

    openness = benchmark(analysis.export_openness_from_matrix,
                         reachability, members)

    means = PolicyAnalysis.mean_openness(openness)
    binary = PolicyAnalysis.binary_pattern_fraction(openness)
    print("\nFigure 11 — fraction of RS members allowed to receive routes")
    for policy, mean in sorted(means.items()):
        count = len(openness[policy])
        print(f"  {policy:<12} mean={mean:.1%} over {count} (member, IXP) pairs")
    print("  (paper: open 96.7%, selective 80.4%, restrictive 69.2%)")
    print(f"  binary pattern (<=10% or >=90% allowed): {binary:.1%}")

    assert openness
    if "open" in means and "restrictive" in means:
        assert means["open"] > means["restrictive"]
    assert binary > 0.6
