"""Section 4.3: querying cost and the prefix-selection optimisations.

Reproduces the cost comparison (exhaustive vs 10%-sampled vs shared-prefix
optimised vs passive-assisted, equations 1 and 2) for the largest IXP with
a route-server looking glass.
"""

from repro.core.passive import PassiveInference
from repro.core.query_cost import QueryCostModel


def test_query_cost_breakdown(scenario, inference, benchmark):
    name = max(scenario.rs_looking_glasses,
               key=lambda n: len(scenario.route_servers[n].members()))
    route_server = scenario.route_servers[name]
    announced = {asn: route_server.announced_prefixes(asn)
                 for asn in route_server.members()}
    passive_members = inference.per_ixp[name].passive_members

    def breakdown():
        model = QueryCostModel(name, announced)
        return model.cost_breakdown(passive_members=passive_members)

    cost = benchmark(breakdown)
    print(f"\nSection 4.3 — querying cost at {name} "
          f"({cost.num_members} RS members)")
    print(f"  exhaustive (all prefixes):      {cost.exhaustive}")
    print(f"  sampled (eq. 1, 10% cap 100):   {cost.sampled}")
    print(f"  optimised (shared prefixes):    {cost.optimised}")
    print(f"  with passive data (eq. 2):      {cost.with_passive}")
    print(f"  exhaustive / optimised:         "
          f"{cost.exhaustive_over_optimised:.1f}x  (paper: ~18x)")
    duration = QueryCostModel.measurement_duration(cost.with_passive,
                                                   seconds_per_query=10)
    print(f"  wall-clock at 1 query / 10 s:   {duration / 3600:.2f} h "
          f"(paper: < 17 h for all IXPs in parallel)")

    assert cost.exhaustive >= cost.sampled >= cost.optimised >= 1
    assert cost.with_passive <= cost.optimised
    assert cost.exhaustive_over_optimised > 1.5
