"""Figure 5: CCDF of the number of RS members advertising a prefix (DE-CIX)."""

from repro.analysis.prefix_stats import prefix_stats_for_route_server


def test_prefix_multiplicity_ccdf(scenario, benchmark):
    route_server = scenario.route_servers["DE-CIX"]

    stats = benchmark(prefix_stats_for_route_server, route_server)

    ccdf = stats.ccdf(max_members=10)
    print("\nFigure 5 — CCDF of members advertising a prefix to the DE-CIX RS")
    for k, fraction in ccdf:
        print(f"  >{k:>2} members: {fraction:.3f}")
    print(f"  fraction of prefixes announced by more than one member: "
          f"{stats.fraction_multi_member():.3f}  (paper: 0.484)")

    values = [fraction for _, fraction in ccdf]
    assert values[0] == 1.0
    assert all(a >= b for a, b in zip(values, values[1:]))
    assert stats.fraction_multi_member() > 0.05
