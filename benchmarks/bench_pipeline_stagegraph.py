"""Stage-graph pipeline overheads: warm-cache re-runs and snapshots.

Measures the two costs the staged pipeline introduces on top of the raw
computation: resolving stages against a warm artifact cache (the price
of an incremental re-run that recomputes nothing upstream), and the
context snapshot roundtrip that sharded stages pay per worker.
"""

from repro.pipeline import AnalysisOptions, ArtifactCache, ScenarioRun
from repro.runtime.snapshot import restore_context, snapshot_context
from repro.scenarios.workloads import small_scenario_config


def test_warm_cache_rerun(benchmark):
    cache = ArtifactCache()
    ScenarioRun(small_scenario_config(), cache=cache).analyses()  # cold fill

    def warm_rerun():
        run = ScenarioRun(
            small_scenario_config(), cache=cache,
            analysis_options=AnalysisOptions(figures=("table2",)))
        return run.analyses(), run.stage_statuses()

    summaries, statuses = benchmark(warm_rerun)
    print("\nStage-graph warm re-run (analysis knob changed)")
    for stage, status in statuses.items():
        print(f"  {stage:<14} {status}")
    assert set(summaries) == {"table2"}
    assert all(status == "memory" for stage, status in statuses.items()
               if stage != "analyses")


def test_context_snapshot_roundtrip(scenario, benchmark):
    def roundtrip():
        return restore_context(snapshot_context(scenario.context))

    restored = benchmark(roundtrip)
    assert restored.index.summary() == scenario.context.index.summary()
