"""Figure 7: customer degrees of the ASes on inferred p2p links."""

from repro.analysis.degrees import DegreeAnalysis


def test_customer_degree_distribution(scenario, reachability, benchmark):
    graph = scenario.graph
    analysis = DegreeAnalysis(
        lambda asn: graph.transit_degree(asn) if graph.has_as(asn) else 0)

    stats = benchmark(analysis.analyse_matrix, reachability)

    summary = stats.summary()
    print("\nFigure 7 — customer degrees on inferred MLP links")
    print(f"  links analysed:                       {int(summary['links'])}")
    print(f"  links between two stubs:              {summary['stub_stub']:.1%} "
          f"(paper: 12.4%)")
    print(f"  links involving at least one stub:    {summary['involves_stub']:.1%} "
          f"(paper: 55.6%)")
    print(f"  links involving an AS with <=10 cust: {summary['small_degree']:.1%} "
          f"(paper: 58.1%)")
    print("  CDF (smallest degree on link):")
    for point, value in stats.cdf("smallest"):
        print(f"    <= {point:>4}: {value:.3f}")

    assert summary["involves_stub"] >= summary["stub_stub"]
    assert summary["small_degree"] >= summary["involves_stub"]
    assert summary["involves_stub"] > 0.3
