"""Table 3 + Figure 8: looking-glass validation of the inferred links."""

from repro.core.validation import LinkValidator


def test_link_validation(scenario, inference, benchmark):
    link_ixp = {}
    for name, links in inference.links_by_ixp().items():
        for link in links:
            link_ixp.setdefault(link, name)
    links = sorted(inference.all_links())

    validator = LinkValidator(
        looking_glasses=scenario.validation_lgs,
        origin_prefixes=scenario.origin_prefixes(),
        geolocation=scenario.geolocation,
    )

    report = benchmark.pedantic(validator.validate, args=(links,),
                                kwargs={"link_ixp": link_ixp},
                                rounds=1, iterations=1)

    print("\nTable 3 — validation of inferred MLP links per IXP")
    print(f"  {'IXP':<10} {'validated':>10} {'confirmed':>10} {'rate':>7}")
    for name, row in sorted(report.per_ixp().items(),
                            key=lambda item: -item[1]["validated"]):
        print(f"  {name:<10} {row['validated']:>10} {row['confirmed']:>10} "
              f"{row['rate']:>6.1%}")
    print(f"  overall: {report.num_tested} tested, {report.num_confirmed} "
          f"confirmed ({report.confirmation_rate:.1%}; paper: 98.4%)")

    rates = report.rate_by_display_mode()
    print("Figure 8 — confirmation rate by LG display mode")
    print(f"  all-paths LGs: {rates['all-paths']:.1%}   "
          f"best-path LGs: {rates['best-path']:.1%}")

    assert report.num_tested > 0
    assert report.confirmation_rate >= 0.7
    assert rates["all-paths"] >= rates["best-path"] - 0.05
