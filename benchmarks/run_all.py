#!/usr/bin/env python3
"""Run every bench_* module and write a BENCH_<date>.json trajectory file.

Each benchmark module is executed in its own pytest subprocess so that
wall time and peak RSS are attributable per bench; the JSON trajectory
(one file per invocation, named after the current date) makes speedups
and regressions trackable across PRs:

    python benchmarks/run_all.py                # all benches
    python benchmarks/run_all.py fig1 substrate # substring filter
    python benchmarks/run_all.py --out results.json

Requires pytest + pytest-benchmark (the tier-1 test environment).
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform
import subprocess
import sys
import threading
import time
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent


def discover_benches(filters: list[str]) -> list[Path]:
    benches = sorted(BENCH_DIR.glob("bench_*.py"))
    if filters:
        benches = [path for path in benches
                   if any(token in path.name for token in filters)]
    return benches


def run_bench(path: Path, timeout: float) -> dict:
    """Run one bench module under pytest, measuring wall time + peak RSS.

    The child is reaped with ``os.wait4`` so the recorded ``ru_maxrss``
    belongs to this bench alone (``RUSAGE_CHILDREN`` would report the
    running maximum over every bench reaped so far).
    """
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    command = [sys.executable, "-m", "pytest", str(path), "-q",
               "--benchmark-only", "--benchmark-disable-gc"]
    started = time.monotonic()
    process = subprocess.Popen(
        command, cwd=REPO_ROOT, env=env,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    timed_out = False

    def _kill() -> None:
        nonlocal timed_out
        timed_out = True
        process.kill()

    timer = threading.Timer(timeout, _kill)
    timer.start()
    try:
        output = process.stdout.read()
    finally:
        timer.cancel()
    _, status, usage = os.wait4(process.pid, 0)
    process.returncode = os.waitstatus_to_exitcode(status)
    wall = time.monotonic() - started
    max_rss_kb = usage.ru_maxrss
    if sys.platform == "darwin":  # macOS reports bytes, Linux kilobytes
        max_rss_kb //= 1024
    return {
        "bench": path.stem,
        "returncode": process.returncode,
        "timed_out": timed_out,
        "wall_seconds": round(wall, 3),
        "max_rss_kb": max_rss_kb,
        "tail": output.splitlines()[-3:] if output else [],
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("filters", nargs="*",
                        help="substring filters on bench file names")
    parser.add_argument("--out", type=Path, default=None,
                        help="output JSON path (default BENCH_<date>.json)")
    parser.add_argument("--timeout", type=float, default=900.0,
                        help="per-bench timeout in seconds")
    args = parser.parse_args()

    benches = discover_benches(args.filters)
    if not benches:
        print("no bench modules matched", file=sys.stderr)
        return 2

    results = []
    for path in benches:
        print(f"[run_all] {path.name} ...", flush=True)
        record = run_bench(path, args.timeout)
        status = "ok" if record["returncode"] == 0 else "FAIL"
        print(f"[run_all]   {status} in {record['wall_seconds']}s "
              f"(max rss {record['max_rss_kb']} kB)", flush=True)
        results.append(record)

    today = datetime.date.today().isoformat()
    out_path = args.out or (REPO_ROOT / f"BENCH_{today}.json")
    trajectory = {
        "date": today,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "benches": results,
    }
    out_path.write_text(json.dumps(trajectory, indent=2) + "\n")
    print(f"[run_all] wrote {out_path}")
    return 1 if any(r["returncode"] != 0 for r in results) else 0


if __name__ == "__main__":
    sys.exit(main())
