#!/usr/bin/env python3
"""Run every bench_* module and write a BENCH_<date>.json trajectory file.

Each benchmark module is executed in its own pytest subprocess so that
wall time and peak RSS are attributable per bench; every timed row
(bench modules, scenario matrix, backend matrix) is a best-of-N
repetition after a warmup run rather than single-shot, so the recorded
numbers track real cost instead of scheduler noise.  The JSON
trajectory (one file per invocation, named after the current date)
makes speedups and regressions trackable across PRs:

    python benchmarks/run_all.py                # all benches
    python benchmarks/run_all.py fig1 substrate # substring filter
    python benchmarks/run_all.py --out results.json

After the run, the most recent prior ``BENCH_*.json`` is loaded and
per-bench wall-time / peak-RSS deltas are printed; any bench regressing
more than :data:`REGRESSION_THRESHOLD` gets a warning line and fails
the invocation (exit code 3).

Requires pytest + pytest-benchmark (the tier-1 test environment).
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform
import re
import subprocess
import sys
import threading
import time
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent

#: Relative wall/RSS growth beyond which a bench counts as regressed.
REGRESSION_THRESHOLD = 0.25


def discover_benches(filters: list[str]) -> list[Path]:
    benches = sorted(BENCH_DIR.glob("bench_*.py"))
    if filters:
        benches = [path for path in benches
                   if any(token in path.name for token in filters)]
    return benches


#: Timed repetitions per bench row (after one warmup); best-of-N is
#: recorded so sub-100ms rows stop tripping the regression gate on
#: scheduler noise.
BENCH_REPS = 3


def _run_bench_once(path: Path, timeout: float) -> dict:
    """One subprocess run of a bench module: wall time + peak RSS.

    The child is reaped with ``os.wait4`` so the recorded ``ru_maxrss``
    belongs to this bench alone (``RUSAGE_CHILDREN`` would report the
    running maximum over every bench reaped so far).
    """
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    command = [sys.executable, "-m", "pytest", str(path), "-q",
               "--benchmark-only", "--benchmark-disable-gc"]
    started = time.monotonic()
    process = subprocess.Popen(
        command, cwd=REPO_ROOT, env=env,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    timed_out = False

    def _kill() -> None:
        nonlocal timed_out
        timed_out = True
        process.kill()

    timer = threading.Timer(timeout, _kill)
    timer.start()
    try:
        output = process.stdout.read()
    finally:
        timer.cancel()
    _, status, usage = os.wait4(process.pid, 0)
    process.returncode = os.waitstatus_to_exitcode(status)
    wall = time.monotonic() - started
    max_rss_kb = usage.ru_maxrss
    if sys.platform == "darwin":  # macOS reports bytes, Linux kilobytes
        max_rss_kb //= 1024
    return {
        "bench": path.stem,
        "returncode": process.returncode,
        "timed_out": timed_out,
        "wall_seconds": round(wall, 3),
        "max_rss_kb": max_rss_kb,
        "tail": output.splitlines()[-3:] if output else [],
    }


def run_bench(path: Path, timeout: float, reps: int = BENCH_REPS) -> dict:
    """Warmup + best-of-*reps* timings for one bench module.

    The warmup run absorbs cold imports and filesystem caches; the
    recorded wall time is the best of the timed repetitions (peak RSS
    the max).  Any failing repetition short-circuits and is recorded
    as-is, so failures surface with their own output tail.
    """
    warmup = _run_bench_once(path, timeout)
    if warmup["returncode"] != 0:
        return warmup
    best = None
    for _ in range(max(1, reps)):
        record = _run_bench_once(path, timeout)
        if record["returncode"] != 0:
            return record
        if best is None or record["wall_seconds"] < best["wall_seconds"]:
            best = record
        best["max_rss_kb"] = max(best["max_rss_kb"], record["max_rss_kb"])
    best["reps"] = max(1, reps)
    return best


def run_scenario_matrix(size: str = "tiny",
                        reps: int = BENCH_REPS) -> list[dict]:
    """Run every registered scenario end-to-end at *size*, in-process.

    One row per scenario lands in the trajectory JSON (name, wall time,
    inferred links, IXP count), so per-scenario build+inference cost is
    trackable across PRs just like the bench modules.  Each row's wall
    time is the best of *reps* cold builds after one warmup run (fresh
    :class:`ArtifactCache` every repetition — the row tracks full
    build+inference cost, not cache hits), so sub-second rows stop
    flapping on scheduler noise.
    """
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.pipeline import ArtifactCache
    from repro.scenarios import scenario_names
    from repro.scenarios.workloads import scenario_run

    def one_run(name):
        run = scenario_run(size, scenario=name, cache=ArtifactCache())
        return run.inference()

    rows: list[dict] = []
    for name in scenario_names():
        print(f"[run_all] scenario {name} ({size}) ...", flush=True)
        started = time.monotonic()
        try:
            one_run(name)  # warmup: imports, interner pools, page cache
            best = float("inf")
            for _ in range(max(1, reps)):
                started = time.monotonic()
                result = one_run(name)
                best = min(best, time.monotonic() - started)
            row = {
                "scenario": name,
                "size": size,
                "ok": True,
                "wall_seconds": round(best, 3),
                "reps": max(1, reps),
                "links": len(result.all_links()),
                "ixps": len(result.per_ixp),
            }
        except Exception as error:  # keep the trajectory for the rest
            row = {
                "scenario": name,
                "size": size,
                "ok": False,
                "wall_seconds": round(time.monotonic() - started, 3),
                "error": f"{type(error).__name__}: {error}",
            }
        status = (f"{row.get('links', '?')} links" if row["ok"]
                  else f"FAIL ({row['error']})")
        print(f"[run_all]   {status} in {row['wall_seconds']}s", flush=True)
        rows.append(row)
    return rows


def run_build_matrix(size: str = "tiny",
                     bench_scenario: str = "europe2013",
                     reps: int = BENCH_REPS) -> list[dict]:
    """Cold per-stage build cost for every registered scenario.

    Every scenario is built through the ``reachability`` artifact at
    *size*; *bench_scenario* additionally at the ``bench`` size (the
    columnar observation plane's acceptance target).  Each repetition
    uses a **fresh** :class:`ArtifactCache` — memory-only, so every
    stage genuinely computes — and the row records the best cache-cold
    end-to-end wall seconds plus that repetition's per-stage split from
    ``run.events``.  The split makes observation-plane regressions
    attributable (collectors vs viewpoints vs propagation vs inference)
    and the end-to-end number rides the same >25% regression gate as
    the bench modules.
    """
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.pipeline import ArtifactCache, ScenarioRun
    from repro.scenarios import scenario_names
    from repro.scenarios.spec import get_scenario

    jobs = [(name, size) for name in scenario_names()]
    jobs.append((bench_scenario, "bench"))
    rows: list[dict] = []
    for name, job_size in jobs:
        spec = get_scenario(name)

        def one_build():
            run = ScenarioRun(spec.config(job_size), scenario=name,
                              cache=ArtifactCache())
            started = time.monotonic()
            run.artifact("reachability")
            total = time.monotonic() - started
            stages: dict[str, float] = {}
            for event in run.events:
                stages[event.stage] = \
                    stages.get(event.stage, 0.0) + event.seconds
            return total, stages

        one_build()  # warmup: imports, interner pools, jit state
        best_total = float("inf")
        best_stages: dict[str, float] = {}
        for _ in range(max(1, reps)):
            total, stages = one_build()
            if total < best_total:
                best_total, best_stages = total, stages
        row = {
            "scenario": name,
            "size": job_size,
            "reps": max(1, reps),
            "end_to_end_seconds": round(best_total, 4),
            "stage_seconds": {stage: round(seconds, 4)
                              for stage, seconds in best_stages.items()},
        }
        top = sorted(best_stages.items(), key=lambda kv: -kv[1])[:3]
        print(f"[run_all] build {name} ({job_size}): "
              f"{row['end_to_end_seconds']}s cold ("
              + ", ".join(f"{stage} {seconds:.3f}s"
                          for stage, seconds in top)
              + ")", flush=True)
        rows.append(row)
    return rows


#: Propagation backends timed by the backend matrix, slowest first.
MATRIX_BACKENDS = ("frontier", "batched", "compiled")


def run_backend_matrix(size: str = "tiny",
                       bench_scenario: str = "europe2013",
                       reps: int = 3) -> list[dict]:
    """Time frontier vs batched vs compiled propagation per scenario.

    Every scenario is measured at *size*; *bench_scenario* additionally
    at the ``bench`` size (the acceptance target).  Each row records,
    per backend, the best engine-level wall seconds (full propagate,
    recorded fragments materialised) and the best **raw sweep** seconds
    (propagator relaxation only, fresh propagator per repetition, no
    materialisation) — the raw compiled-vs-frontier ratio is the fused
    kernel's headline speedup.  Repetitions are *interleaved* across
    backends (frontier, batched, compiled, frontier, ...) so slow
    machine drift hits every backend equally instead of biasing
    whichever ran last.  A link-equality verdict across all three
    backends rides on every row; ``run_all`` exits non-zero when any
    row reports a mismatch.

    A final ``workers x backend`` scaling row (scenario ``bench``,
    ``workers=2`` via :func:`~repro.pipeline.shard.sharded_propagate`)
    records how sharding composes with each backend, alongside the
    box's CPU count so single-core results read as what they are.
    """
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.bgp.propagation import BATCH_SIZE, OriginSpec
    from repro.pipeline import ArtifactCache, ScenarioRun
    from repro.pipeline.shard import sharded_propagate
    from repro.runtime.batched import BatchedPropagator, numpy_available
    from repro.runtime.compiled import CompiledPropagator, compiled_batch_size
    from repro.runtime.frontier import FrontierPropagator
    from repro.runtime.stores import PathStore
    from repro.scenarios import scenario_names
    from repro.scenarios.spec import get_scenario

    if not numpy_available():
        print("[run_all] backend matrix skipped (numpy unavailable)")
        return []

    reps = max(1, reps)
    jobs = [(name, size) for name in scenario_names()]
    jobs.append((bench_scenario, "bench"))
    rows: list[dict] = []
    bench_workload = None
    for name, job_size in jobs:
        spec = get_scenario(name)
        run = ScenarioRun(spec.config(job_size), scenario=name,
                          cache=ArtifactCache())
        scenario = run.scenario()
        context = scenario.context
        origins = [OriginSpec(asn=node.asn, prefixes=list(node.prefixes))
                   for node in scenario.graph.nodes() if node.prefixes]
        observers = [vp.asn for vp in scenario.vantage_points]
        alternatives = [lg.asn for lg in scenario.validation_lgs]
        if name == bench_scenario and job_size == "bench":
            bench_workload = (context, origins, observers, alternatives)

        def propagate(backend):
            context.clear_propagation_cache()
            engine = context.engine(record_at=observers,
                                    record_alternatives_at=alternatives,
                                    backend=backend)
            return engine.propagate(origins)

        # -- engine-level timings (fragments materialised) -------------
        results = {}
        timings = {backend: float("inf") for backend in MATRIX_BACKENDS}
        for backend in MATRIX_BACKENDS:
            propagate(backend)  # warm plan / interners / route tables
        for _ in range(reps):
            for backend in MATRIX_BACKENDS:
                started = time.monotonic()
                results[backend] = propagate(backend)
                timings[backend] = min(timings[backend],
                                       time.monotonic() - started)
        frontier_links = results["frontier"].visible_links()
        links_equal = all(
            results[backend].visible_links() == frontier_links
            for backend in MATRIX_BACKENDS[1:])

        # -- raw propagation sweep (relaxation only) -------------------
        index, bags, plan = context.index, context.bags, context.plan
        origin_nodes = [index.id_of[origin.asn] for origin in origins
                        if origin.asn in index.id_of]
        empty_bags = [bags.EMPTY] * len(origin_nodes)

        def raw_sweep(backend):
            if backend == "frontier":
                propagator = FrontierPropagator(index, PathStore(), bags)
                for node in origin_nodes:
                    propagator.run(node, bags.EMPTY)
                return
            if backend == "compiled":
                propagator = CompiledPropagator(plan, bags)
                batch = compiled_batch_size(plan)
            else:
                propagator = BatchedPropagator(plan, bags)
                batch = BATCH_SIZE
            for start in range(0, len(origin_nodes), batch):
                propagator.run_batch(origin_nodes[start:start + batch],
                                     empty_bags[start:start + batch],
                                     frozenset())

        raw = {backend: float("inf") for backend in MATRIX_BACKENDS}
        for backend in MATRIX_BACKENDS:
            raw_sweep(backend)  # warmup (page-in, allocator steady state)
        for _ in range(reps):
            for backend in MATRIX_BACKENDS:
                started = time.monotonic()
                raw_sweep(backend)
                raw[backend] = min(raw[backend],
                                   time.monotonic() - started)

        row = {
            "scenario": name,
            "size": job_size,
            "workers": 1,
            "origins": len(origins),
            "nodes": context.index.num_nodes,
            "frontier_seconds": round(timings["frontier"], 4),
            "batched_seconds": round(timings["batched"], 4),
            "compiled_seconds": round(timings["compiled"], 4),
            "batched_speedup": round(timings["frontier"]
                                     / max(timings["batched"], 1e-9), 2),
            "compiled_speedup": round(timings["frontier"]
                                      / max(timings["compiled"], 1e-9), 2),
            "raw_frontier_seconds": round(raw["frontier"], 4),
            "raw_batched_seconds": round(raw["batched"], 4),
            "raw_compiled_seconds": round(raw["compiled"], 4),
            "raw_batched_speedup": round(raw["frontier"]
                                         / max(raw["batched"], 1e-9), 2),
            "raw_compiled_speedup": round(raw["frontier"]
                                          / max(raw["compiled"], 1e-9), 2),
            # Materialisation share: engine-level minus raw sweep, i.e.
            # the cost of turning finished planes into recorded
            # fragments (columnar block assembly).  The split makes the
            # end-to-end trajectory attributable: raw_* tracks the
            # kernel, mat_* tracks the fragment plane.
            "mat_frontier_seconds": round(
                max(timings["frontier"] - raw["frontier"], 0.0), 4),
            "mat_batched_seconds": round(
                max(timings["batched"] - raw["batched"], 0.0), 4),
            "mat_compiled_seconds": round(
                max(timings["compiled"] - raw["compiled"], 0.0), 4),
            "links_equal": links_equal,
        }
        print(f"[run_all] backend {name} ({job_size}): "
              f"frontier {row['frontier_seconds']}s, "
              f"batched {row['batched_seconds']}s "
              f"({row['batched_speedup']}x), "
              f"compiled {row['compiled_seconds']}s "
              f"({row['compiled_speedup']}x); raw sweep "
              f"{row['raw_frontier_seconds']}/"
              f"{row['raw_batched_seconds']}/"
              f"{row['raw_compiled_seconds']}s "
              f"(compiled {row['raw_compiled_speedup']}x, "
              f"links_equal={links_equal})", flush=True)
        rows.append(row)

    if bench_workload is not None:
        rows.append(_run_worker_scaling_row(
            bench_scenario, bench_workload, sharded_propagate, reps))
    return rows


def _run_worker_scaling_row(scenario_name: str, workload, sharded, reps: int,
                            workers: int = 2) -> dict:
    """One ``workers x backend`` row: bench-size sharded propagation.

    Times :func:`sharded_propagate` at *workers* processes per backend
    (best of *reps*, after one warmup) next to the single-process best,
    and records ``cpus`` so a flat or negative scaling factor is legible
    in context.  On a single-CPU box no scaling is physically possible,
    so the sharded *timings* are skipped entirely — the row keeps the
    ``cpus`` column, gains a ``skipped_scaling_note`` and still runs one
    sharded pass per backend for the links-equality verdict (process
    boundary correctness is cheap to keep pinned; fake sub-1x scaling
    numbers are not worth recording).  The compiled plan is built once
    in the parent and shipped to every worker via the context snapshot.
    """
    context, origins, observers, alternatives = workload
    cpus = os.cpu_count() or 1
    skip_scaling = cpus <= 1
    row: dict = {
        "scenario": scenario_name,
        "size": "bench",
        "workers": workers,
        "cpus": cpus,
        "origins": len(origins),
        "nodes": context.index.num_nodes,
    }
    if skip_scaling:
        row["skipped_scaling_note"] = (
            "sharded timings skipped: 1-CPU box cannot demonstrate "
            "worker scaling; sharded links still verified")

    def shard(backend, worker_count):
        context.clear_propagation_cache()
        return sharded(context, origins, observers, alternatives,
                       workers=worker_count, backend=backend)

    links = {}
    for backend in MATRIX_BACKENDS:
        single = float("inf")
        multi = float("inf")
        shard(backend, workers)  # warmup (pool fork, plan ship)
        for _ in range(max(1, reps)):
            started = time.monotonic()
            result_single = shard(backend, 1)
            single = min(single, time.monotonic() - started)
            if skip_scaling:
                continue
            started = time.monotonic()
            result_multi = shard(backend, workers)
            multi = min(multi, time.monotonic() - started)
        if skip_scaling:
            result_multi = shard(backend, workers)  # correctness only
        links[backend] = (result_single.visible_links(),
                          result_multi.visible_links())
        row[f"{backend}_seconds"] = round(single, 4)
        if not skip_scaling:
            row[f"{backend}_sharded_seconds"] = round(multi, 4)
            row[f"{backend}_worker_scaling"] = round(
                single / max(multi, 1e-9), 2)
    frontier_links = links["frontier"][0]
    row["links_equal"] = all(
        sharded_links == frontier_links
        for pair in links.values() for sharded_links in pair)
    if skip_scaling:
        print(f"[run_all] backend workers x{workers} (cpus={cpus}): "
              "sharded timings skipped (1-CPU box); "
              + ", ".join(f"{backend} {row[f'{backend}_seconds']}s"
                          for backend in MATRIX_BACKENDS)
              + f", links_equal={row['links_equal']}", flush=True)
    else:
        print(f"[run_all] backend workers x{workers} (cpus={cpus}): "
              + ", ".join(
                  f"{backend} {row[f'{backend}_seconds']}s -> "
                  f"{row[f'{backend}_sharded_seconds']}s "
                  f"({row[f'{backend}_worker_scaling']}x)"
                  for backend in MATRIX_BACKENDS)
              + f", links_equal={row['links_equal']}", flush=True)
    return row


def run_inference_matrix(size: str = "tiny",
                         bench_scenario: str = "europe2013") -> list[dict]:
    """Time object vs bitset inference per registered scenario.

    Every scenario is measured at *size*; *bench_scenario* additionally
    at the ``bench`` size (the acceptance target).  Each row records,
    per backend, the *cold* wall seconds (first run after the shared
    archive memo is warmed — for the bitset backend this executes the
    full plane build + M & M.T kernel, no observation-plane cache) and
    the best *warm* wall seconds of three steady-state runs (the bitset
    backend then serves from its context-cached planes — the artifact
    reuse the backend is designed around), plus both speedups and an
    equivalence verdict covering links, Table 2 rows and reachability
    provenance, so the BENCH trajectory tracks the kernel win and the
    cache win separately, and the backends' bit-identity, across PRs.
    """
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.pipeline import ArtifactCache, ScenarioRun
    from repro.scenarios import scenario_names
    from repro.scenarios.spec import get_scenario

    jobs = [(name, size) for name in scenario_names()]
    jobs.append((bench_scenario, "bench"))
    rows: list[dict] = []
    for name, job_size in jobs:
        spec = get_scenario(name)
        run = ScenarioRun(spec.config(job_size), scenario=name,
                          cache=ArtifactCache())
        scenario = run.scenario()

        # Warm the shared archive memo so neither backend's cold run
        # pays the (backend-independent) stable-entry walk.
        scenario.archive.clean_stable_entries()
        timings: dict[str, float] = {}
        cold: dict[str, float] = {}
        results = {}
        for backend in ("object", "bitset"):
            started = time.monotonic()
            scenario.run_inference(inference_backend=backend)
            cold[backend] = round(time.monotonic() - started, 4)
            best = float("inf")
            for _ in range(3):
                started = time.monotonic()
                results[backend] = scenario.run_inference(
                    inference_backend=backend)
                best = min(best, time.monotonic() - started)
            timings[backend] = round(best, 4)
        obj, bit = results["object"], results["bitset"]
        identical = obj.identical_to(bit)
        row = {
            "scenario": name,
            "size": job_size,
            "ixps": len(obj.per_ixp),
            "links": len(obj.all_links()),
            "object_seconds": timings["object"],
            "bitset_seconds": timings["bitset"],
            "object_cold_seconds": cold["object"],
            "bitset_cold_seconds": cold["bitset"],
            "speedup": round(timings["object"]
                             / max(timings["bitset"], 1e-9), 2),
            "cold_speedup": round(cold["object"]
                                  / max(cold["bitset"], 1e-9), 2),
            "results_identical": identical,
        }
        print(f"[run_all] inference {name} ({job_size}): "
              f"object {row['object_seconds']}s, "
              f"bitset {row['bitset_seconds']}s "
              f"({row['speedup']}x warm / {row['cold_speedup']}x cold, "
              f"identical={identical})", flush=True)
        rows.append(row)
    return rows


def run_delta_matrix(size: str = "bench") -> list[dict]:
    """Time delta-apply vs full rebuild per event family and backend.

    For every registered event family the baseline scenario is built at
    *size*, its timeline replayed through
    :class:`~repro.scenarios.events.TimelineReplay` (per-event wall
    seconds include the affected-set computation, any index rebuild and
    the frontier-limited recompute), and the final patched result
    checked link-for-link against one from-scratch rebuild of the final
    state — ``run_all`` exits non-zero on any mismatch.  Each row
    records the full-rebuild seconds, the median delta-apply seconds
    (overall and over single-edge events, the acceptance target) and
    the mean affected-origin fraction, so the incremental path's win —
    and its honest degradation on wide-frontier events — is trackable
    across PRs.
    """
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from statistics import median
    from repro.pipeline import ArtifactCache, ScenarioRun
    from repro.runtime.batched import numpy_available
    from repro.scenarios.events import (TimelineReplay, build_timeline,
                                        event_family_names,
                                        rebuild_propagation, record_sets)
    from repro.scenarios.spec import get_scenario

    if not numpy_available():
        print("[run_all] delta matrix skipped (numpy unavailable)")
        return []

    rows: list[dict] = []
    for family in event_family_names():
        name = f"europe2013-{family}"
        spec = get_scenario(name)
        run = ScenarioRun(spec.config(size), scenario=name,
                          cache=ArtifactCache())
        propagation = run.artifact("propagation")
        scenario = run.scenario()
        record_at, record_alt = record_sets(propagation)
        events = build_timeline(spec.timeline, scenario.graph,
                                scenario.route_servers)
        for backend in MATRIX_BACKENDS:
            replay = TimelineReplay(
                scenario.graph, scenario.route_servers,
                propagation["propagation"], record_at, record_alt,
                backend=backend)
            report = replay.replay(events)
            delta_seconds = [r.seconds for r in report.reports]
            single_edge = [r.seconds for r in report.reports
                           if r.links_changed == 1]
            fractions = [r.affected_fraction for r in report.reports]
            started = time.monotonic()
            _, full = rebuild_propagation(
                replay.graph, replay.route_servers, record_at, record_alt,
                backend=backend)
            rebuild_seconds = time.monotonic() - started
            links_equal = \
                report.result.visible_links() == full.visible_links()
            row = {
                "family": family,
                "backend": backend,
                "size": size,
                "events": len(events),
                "origins": report.reports[-1].total if report.reports else 0,
                "rebuild_seconds": round(rebuild_seconds, 4),
                "delta_total_seconds": round(sum(delta_seconds), 4),
                "delta_median_seconds": round(median(delta_seconds), 4)
                if delta_seconds else None,
                "single_edge_events": len(single_edge),
                "single_edge_median_seconds": round(median(single_edge), 4)
                if single_edge else None,
                "median_speedup": round(
                    rebuild_seconds / max(median(delta_seconds), 1e-9), 2)
                if delta_seconds else None,
                "single_edge_speedup": round(
                    rebuild_seconds / max(median(single_edge), 1e-9), 2)
                if single_edge else None,
                "mean_affected_fraction": round(
                    sum(fractions) / len(fractions), 4) if fractions else 0.0,
                "links_equal": links_equal,
            }
            print(f"[run_all] delta {family} ({size}, {backend}): "
                  f"rebuild {row['rebuild_seconds']}s, delta median "
                  f"{row['delta_median_seconds']}s "
                  f"({row['median_speedup']}x; single-edge "
                  f"{row['single_edge_speedup']}x over "
                  f"{row['single_edge_events']} events), affected "
                  f"{row['mean_affected_fraction']:.1%}, "
                  f"links_equal={links_equal}", flush=True)
            rows.append(row)
    return rows


def run_query_matrix(size: str = "tiny",
                     scenario: str = "europe2013",
                     requests_per_endpoint: int = 400) -> list[dict]:
    """Load-test the query daemon over the mmap artifact; one row per
    endpoint.

    Warms *scenario* at *size* through :func:`repro.service.daemon.
    warm_service` (pipeline build -> artifact export -> mmap load ->
    bit-identity assertion), starts the HTTP server on a background
    thread and replays ~*requests_per_endpoint* keep-alive GETs per
    endpoint through :mod:`repro.service.loadgen`.  Each row records
    request count, error count, p50/p99 latency in microseconds and
    queries/second, so daemon regressions are trackable across PRs like
    every other matrix.  ``has_link`` targets mix sampled true links
    with guaranteed non-links; ``links_of`` cycles through every peer
    AS.  A row is ``ok`` when every response was HTTP 200.
    """
    sys.path.insert(0, str(REPO_ROOT / "src"))
    import tempfile

    from repro.runtime.batched import numpy_available

    if not numpy_available():
        print("[run_all] query matrix skipped (numpy unavailable)")
        return []

    from repro.service.daemon import ServerThread, warm_service
    from repro.service.loadgen import run_load

    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        service, _dirs = warm_service([scenario], size=size,
                                      artifact_root=Path(tmp), verify=True)
        handle = service.handles[scenario]
        links = [(int(a), int(b)) for a, b in handle.all_links]
        members = sorted(int(asn) for asn in handle.peer_asns)
        link_set = set(links)
        true_links = links[:: max(1, len(links)
                                  // (requests_per_endpoint // 2))]
        non_links = [(a, b) for a in members[:30] for b in members[:30]
                     if a < b and (a, b) not in link_set]
        non_links = non_links[:requests_per_endpoint // 2]
        targets = {
            "has_link": [f"/q/{scenario}/has_link?a={a}&b={b}"
                         for a, b in true_links + non_links],
            "links_of": [f"/q/{scenario}/links_of?asn={asn}"
                         for asn in members],
            "peer_counts": [f"/q/{scenario}/peer_counts"],
            "member_densities": [f"/q/{scenario}/member_densities"],
            "table2": [f"/q/{scenario}/table2"],
        }
        rows: list[dict] = []
        with ServerThread(service) as server:
            for endpoint, endpoint_targets in targets.items():
                repeat = max(1, requests_per_endpoint
                             // len(endpoint_targets))
                run_load("127.0.0.1", server.port, endpoint,
                         endpoint_targets[:20], repeat=1)  # warmup
                report = run_load("127.0.0.1", server.port, endpoint,
                                  endpoint_targets, repeat=repeat)
                row = {"scenario": scenario, "size": size,
                       **report.row(), "ok": report.errors == 0}
                print(f"[run_all] query {endpoint}: "
                      f"{row['requests']} reqs, p50 {row['p50_us']}us, "
                      f"p99 {row['p99_us']}us, {row['qps']} q/s, "
                      f"ok={row['ok']}", flush=True)
                rows.append(row)
        return rows


def find_previous_trajectory(exclude: Path) -> Path | None:
    """The most recent prior ``BENCH_<ISO date>.json`` (by dated name).

    Only date-shaped names participate, so ad-hoc ``--out`` files (e.g.
    ``BENCH_smoke.json``) never become the comparison baseline.
    """
    dated = re.compile(r"^BENCH_(\d{4}-\d{2}-\d{2})\.json$")
    candidates = sorted(
        (match.group(1), path)
        for path in REPO_ROOT.glob("BENCH_*.json")
        if (match := dated.match(path.name))
        and path.resolve() != exclude.resolve())
    return candidates[-1][1] if candidates else None


def compare_with_previous(results: list[dict], previous_path: Path,
                          build_rows: list[dict] | None = None) -> list[str]:
    """Print per-bench (and per-scenario cold-build) deltas against
    *previous_path*.

    Returns warning lines (also printed) for benches whose wall time or
    peak RSS — or build rows whose cache-cold end-to-end seconds —
    regressed more than :data:`REGRESSION_THRESHOLD`.
    """
    try:
        previous = json.loads(previous_path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        print(f"[run_all] cannot read previous trajectory "
              f"{previous_path.name}: {error}", file=sys.stderr)
        return []
    baseline = {record["bench"]: record
                for record in previous.get("benches", [])}
    print(f"[run_all] deltas vs {previous_path.name} "
          f"({previous.get('date', '?')})")
    warnings: list[str] = []
    for record in results:
        name = record["bench"]
        base = baseline.get(name)
        if base is None or base.get("returncode") != 0 \
                or record["returncode"] != 0:
            print(f"[run_all]   {name:<34} (no comparable baseline)")
            continue
        deltas = []
        regressed = []
        for key, unit, fmt in (("wall_seconds", "s", "+.3f"),
                               ("max_rss_kb", "kB", "+d")):
            now, then = record[key], base[key]
            delta = now - then
            ratio = (delta / then) if then else 0.0
            deltas.append(f"{key.split('_')[0]} {delta:{fmt}}{unit} "
                          f"({ratio:+.1%})")
            if then and ratio > REGRESSION_THRESHOLD:
                regressed.append(f"{key} {then} -> {now} ({ratio:+.1%})")
        print(f"[run_all]   {name:<34} {'  '.join(deltas)}")
        if regressed:
            warning = (f"[run_all] WARNING: {name} regressed "
                       f">{REGRESSION_THRESHOLD:.0%}: {'; '.join(regressed)}")
            print(warning)
            warnings.append(warning)

    build_baseline = {(row["scenario"], row["size"]): row
                      for row in previous.get("build_matrix", [])}
    for row in build_rows or []:
        key = (row["scenario"], row["size"])
        base = build_baseline.get(key)
        if base is None:
            continue
        now, then = row["end_to_end_seconds"], base["end_to_end_seconds"]
        ratio = ((now - then) / then) if then else 0.0
        print(f"[run_all]   build {row['scenario']} ({row['size']}) "
              f"{now - then:+.3f}s ({ratio:+.1%})")
        if then and ratio > REGRESSION_THRESHOLD:
            warning = (f"[run_all] WARNING: build {row['scenario']} "
                       f"({row['size']}) regressed "
                       f">{REGRESSION_THRESHOLD:.0%}: {then} -> {now} "
                       f"({ratio:+.1%})")
            print(warning)
            warnings.append(warning)
    return warnings


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("filters", nargs="*",
                        help="substring filters on bench file names")
    parser.add_argument("--out", type=Path, default=None,
                        help="output JSON path (default BENCH_<date>.json)")
    parser.add_argument("--timeout", type=float, default=900.0,
                        help="per-bench timeout in seconds")
    parser.add_argument("--skip-scenario-matrix", action="store_true",
                        help="do not run the per-scenario tiny matrix")
    parser.add_argument("--skip-build-matrix", action="store_true",
                        help="do not run the cache-cold per-stage build "
                             "matrix")
    parser.add_argument("--skip-backend-matrix", action="store_true",
                        help="do not run the propagation backend matrix "
                             "(frontier vs batched vs compiled)")
    parser.add_argument("--skip-inference-matrix", action="store_true",
                        help="do not run the object-vs-bitset inference matrix")
    parser.add_argument("--skip-delta-matrix", action="store_true",
                        help="do not run the event-delta vs full-rebuild "
                             "matrix")
    parser.add_argument("--skip-query-matrix", action="store_true",
                        help="do not run the query-daemon load matrix")
    parser.add_argument("--matrix-size", default="tiny",
                        help="size-table row for the scenario matrix")
    parser.add_argument("--delta-size", default="bench",
                        help="size-table row for the delta matrix")
    args = parser.parse_args()

    benches = discover_benches(args.filters)
    if not benches:
        print("no bench modules matched", file=sys.stderr)
        return 2

    results = []
    for path in benches:
        print(f"[run_all] {path.name} ...", flush=True)
        record = run_bench(path, args.timeout)
        status = "ok" if record["returncode"] == 0 else "FAIL"
        print(f"[run_all]   {status} in {record['wall_seconds']}s "
              f"(max rss {record['max_rss_kb']} kB)", flush=True)
        results.append(record)

    scenario_rows: list[dict] = []
    if not args.skip_scenario_matrix:
        scenario_rows = run_scenario_matrix(args.matrix_size)

    build_rows: list[dict] = []
    if not args.skip_build_matrix:
        build_rows = run_build_matrix(args.matrix_size)

    backend_rows: list[dict] = []
    if not args.skip_backend_matrix:
        backend_rows = run_backend_matrix(args.matrix_size)

    inference_rows: list[dict] = []
    if not args.skip_inference_matrix:
        inference_rows = run_inference_matrix(args.matrix_size)

    delta_rows: list[dict] = []
    if not args.skip_delta_matrix:
        delta_rows = run_delta_matrix(args.delta_size)

    query_rows: list[dict] = []
    if not args.skip_query_matrix:
        query_rows = run_query_matrix(args.matrix_size)

    today = datetime.date.today().isoformat()
    out_path = args.out or (REPO_ROOT / f"BENCH_{today}.json")
    previous_path = find_previous_trajectory(exclude=out_path)
    trajectory = {
        "date": today,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "benches": results,
        "scenarios": scenario_rows,
        "build_matrix": build_rows,
        "backend_matrix": backend_rows,
        "inference_matrix": inference_rows,
        "delta_matrix": delta_rows,
        "query_matrix": query_rows,
    }
    out_path.write_text(json.dumps(trajectory, indent=2) + "\n")
    print(f"[run_all] wrote {out_path}")

    warnings: list[str] = []
    if previous_path is not None:
        warnings = compare_with_previous(results, previous_path, build_rows)
    else:
        print("[run_all] no previous trajectory to compare against")

    if any(r["returncode"] != 0 for r in results):
        return 1
    if any(not row["ok"] for row in scenario_rows):
        return 1
    if any(not row["links_equal"] for row in backend_rows):
        return 1
    if any(not row["results_identical"] for row in inference_rows):
        return 1
    if any(not row["links_equal"] for row in delta_rows):
        return 1
    if any(not row["ok"] for row in query_rows):
        return 1
    return 3 if warnings else 0


if __name__ == "__main__":
    sys.exit(main())
