"""Shared benchmark fixtures: one scenario + inference reused by all benches."""

from __future__ import annotations

import pytest

from repro.scenarios.europe2013 import ScenarioConfig, build_europe2013
from repro.topology.generator import GeneratorConfig


def benchmark_scenario_config(seed: int = 20130501) -> ScenarioConfig:
    """The scenario used by the benchmark suite (between small and medium)."""
    return ScenarioConfig(
        generator=GeneratorConfig(seed=seed, scale=0.18, ixp_member_scale=0.16),
        seed=seed + 1,
        num_validation_lgs=40,
        num_traceroute_monitors=15,
    )


@pytest.fixture(scope="session")
def scenario():
    """The synthetic Europe-2013 measurement scenario."""
    return build_europe2013(benchmark_scenario_config())


@pytest.fixture(scope="session")
def inference(scenario):
    """Full passive+active inference over the scenario."""
    return scenario.run_inference()
