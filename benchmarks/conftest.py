"""Shared benchmark fixtures: one scenario + inference reused by all benches.

The fixtures execute through the staged pipeline
(:class:`repro.pipeline.ScenarioRun`) against one session-scoped
artifact cache, so every bench in a module shares the scenario and
inference artifacts instead of re-deriving them per fixture.
"""

from __future__ import annotations

import pytest

from repro.pipeline import ArtifactCache, ScenarioRun
from repro.scenarios.europe2013 import ScenarioConfig
from repro.topology.generator import GeneratorConfig


def benchmark_scenario_config(seed: int = 20130501) -> ScenarioConfig:
    """The scenario used by the benchmark suite (between small and medium)."""
    return ScenarioConfig(
        generator=GeneratorConfig(seed=seed, scale=0.18, ixp_member_scale=0.16),
        seed=seed + 1,
        num_validation_lgs=40,
        num_traceroute_monitors=15,
    )


@pytest.fixture(scope="session")
def scenario_run():
    """The staged pipeline run all bench fixtures resolve through."""
    return ScenarioRun(benchmark_scenario_config(), cache=ArtifactCache())


@pytest.fixture(scope="session")
def scenario(scenario_run):
    """The synthetic Europe-2013 measurement scenario."""
    return scenario_run.scenario()


@pytest.fixture(scope="session")
def inference(scenario_run):
    """Full passive+active inference over the scenario."""
    return scenario_run.inference()
