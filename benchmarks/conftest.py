"""Shared benchmark fixtures: one scenario + inference reused by all benches.

The fixtures execute through the staged pipeline
(:class:`repro.pipeline.ScenarioRun`) against one session-scoped
artifact cache, so every bench in a module shares the scenario and
inference artifacts instead of re-deriving them per fixture.
"""

from __future__ import annotations

import pytest

from repro.pipeline import ArtifactCache, ScenarioRun
from repro.scenarios.base import ScenarioConfig
from repro.scenarios.spec import get_scenario


def benchmark_scenario_config(seed: int = 20130501) -> ScenarioConfig:
    """The scenario used by the benchmark suite: the registry's
    ``europe2013`` family at the ``bench`` size (between small and
    medium)."""
    return get_scenario("europe2013").config("bench", seed)


@pytest.fixture(scope="session")
def scenario_run():
    """The staged pipeline run all bench fixtures resolve through."""
    return ScenarioRun(benchmark_scenario_config(), cache=ArtifactCache())


@pytest.fixture(scope="session")
def scenario(scenario_run):
    """The synthetic Europe-2013 measurement scenario."""
    return scenario_run.scenario()


@pytest.fixture(scope="session")
def inference(scenario_run):
    """Full passive+active inference over the scenario."""
    return scenario_run.inference()


@pytest.fixture(scope="session")
def reachability(scenario_run):
    """The shared per-IXP reachability-plane artifact (the memoised
    link/provenance views every figure bench consumes)."""
    return scenario_run.reachability()
