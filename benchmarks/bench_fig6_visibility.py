"""Figure 6: MLP links vs passive BGP and traceroute visibility.

Also reproduces the headline claims: most inferred links are invisible in
public BGP data (paper: 88%), and the inferred set multiplies the number
of known peering links (paper: +209%).
"""

from repro.analysis.visibility import VisibilityAnalysis


def test_visibility_comparison(scenario, reachability, benchmark):
    bgp_links = scenario.public_bgp_links()

    def analyse():
        traceroute_links = scenario.traceroute_links()
        analysis = VisibilityAnalysis.from_matrix(
            reachability, bgp_links, traceroute_links)
        return analysis, analysis.report.summary()

    analysis, summary = benchmark(analyse)

    print("\nFigure 6 / section 5 headline numbers")
    print(f"  MLP links inferred:              {int(summary['mlp_links'])}")
    print(f"  AS links visible in public BGP:  {int(summary['bgp_links'])}")
    print(f"  traceroute-derived AS links:     {int(summary['traceroute_links'])}")
    print(f"  MLP links visible in BGP:        {int(summary['visible_in_bgp'])} "
          f"({summary['fraction_visible_in_bgp']:.1%}; paper: 11.9%)")
    print(f"  previously invisible:            {summary['fraction_invisible']:.1%} "
          f"(paper: 88%)")
    print(f"  MLP links seen by traceroute:    "
          f"{int(summary['visible_in_traceroute'])}")

    series = analysis.per_member_series()
    print("  per-member series (top 5 by MLP peer count):")
    for row in series[:5]:
        print(f"    AS{row['asn']:<8} mlp={row['mlp']:<5} passive={row['passive']:<5} "
              f"active={row['active']}")

    assert summary["fraction_invisible"] > 0.5
    assert summary["visible_in_traceroute"] <= summary["visible_in_bgp"] + 5
