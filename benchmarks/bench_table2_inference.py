"""Table 2: per-IXP MLP inference results (the headline experiment).

Prints the reproduced Table 2 (ASes / RS members / passive / active /
links per IXP) and benchmarks the end-to-end inference over the already
assembled scenario.
"""


def test_table2_inference(scenario, benchmark):
    result = benchmark.pedantic(scenario.run_inference, rounds=1, iterations=1)

    ixp_ases = {name: len(ixp.members) for name, ixp in scenario.ixps.items()}
    ixp_lg = {spec.name: spec.has_rs_lg for spec in scenario.internet.ixp_specs}
    rows = result.table2(ixp_ases=ixp_ases, ixp_has_lg=ixp_lg)

    print("\nTable 2 — inferred MLP links per IXP")
    print(f"  {'IXP':<10} {'LG':>3} {'ASes':>6} {'RS':>5} {'Pasv':>6} "
          f"{'Active':>7} {'Links':>8}")
    for row in rows:
        print(f"  {row['IXP']:<10} {row['LG']:>3} {row['ASes']:>6} {row['RS']:>5} "
              f"{row['Pasv']:>6} {row['Active']:>7} {row['Links']:>8}")
    total = set(result.all_links())
    truth = scenario.ground_truth_links()
    print(f"  total unique links inferred: {len(total)}")
    print(f"  links counted at multiple IXPs: {len(result.multi_ixp_links())}")
    print(f"  precision vs ground truth: {len(total & truth) / len(total):.3f}")

    assert len(rows) == 13
    assert len(total) > 1000
    assert len(total & truth) / len(total) >= 0.98
