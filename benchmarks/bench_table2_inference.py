"""Table 2: per-IXP MLP inference results (the headline experiment).

Prints the reproduced Table 2 (ASes / RS members / passive / active /
links per IXP) and benchmarks the end-to-end inference over the already
assembled scenario, once per inference backend: the per-IXP ``object``
engine and the vectorized ``bitset`` plane (interned observations,
reciprocal ``M & M.T`` kernel, context-cached planes).  The first run
per backend warms the shared caches (archive stable-entry memo,
observation planes), so the timed rounds compare *steady-state*
throughput: the bitset rounds serve from the context-cached planes —
the artifact reuse the backend is designed around — while the object
engine re-derives per run.  The >= 2x acceptance target is met by that
steady state (~10x at bench size); ``run_all.py``'s
``inference_matrix`` rows additionally record the cold (no plane
cache) timings, where the plane build + kernel is a more modest
~1.2-2.8x win — read the two columns separately.
"""

import pytest


@pytest.mark.parametrize("inference_backend", ["object", "bitset"])
def test_table2_inference(scenario, benchmark, inference_backend):
    def infer():
        return scenario.run_inference(inference_backend=inference_backend)

    infer()  # warm the archive memo / observation-plane cache
    result = benchmark.pedantic(infer, rounds=3, iterations=1)

    ixp_ases = {name: len(ixp.members) for name, ixp in scenario.ixps.items()}
    ixp_lg = {spec.name: spec.has_rs_lg for spec in scenario.internet.ixp_specs}
    rows = result.table2(ixp_ases=ixp_ases, ixp_has_lg=ixp_lg)

    print(f"\nTable 2 — inferred MLP links per IXP ({inference_backend})")
    print(f"  {'IXP':<10} {'LG':>3} {'ASes':>6} {'RS':>5} {'Pasv':>6} "
          f"{'Active':>7} {'Links':>8}")
    for row in rows:
        print(f"  {row['IXP']:<10} {row['LG']:>3} {row['ASes']:>6} {row['RS']:>5} "
              f"{row['Pasv']:>6} {row['Active']:>7} {row['Links']:>8}")
    total = set(result.all_links())
    truth = scenario.ground_truth_links()
    print(f"  total unique links inferred: {len(total)}")
    print(f"  links counted at multiple IXPs: {len(result.multi_ixp_links())}")
    print(f"  precision vs ground truth: {len(total & truth) / len(total):.3f}")

    assert result.inference_backend == inference_backend
    assert len(rows) == 13
    assert len(total) > 1000
    assert len(total & truth) / len(total) >= 0.98
    # The bench-size cross-backend equivalence gate lives in
    # bench_inference_matrix.py (MLPInferenceResult.identical_to).
