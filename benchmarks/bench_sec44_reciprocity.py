"""Section 4.4: reciprocity of IRR import/export filters (AMS-IX members)."""

from repro.core.reciprocity import ReciprocityValidator


def test_reciprocity_validation(scenario, benchmark):
    members = scenario.graph.rs_members_of_ixp("AMS-IX")
    validator = ReciprocityValidator(scenario.irr)

    report = benchmark(validator.validate, "AMS-IX", members)

    summary = report.summary()
    print("\nSection 4.4 — reciprocity of import/export filters (AMS-IX)")
    print(f"  members with IRR filters checked: {summary['members_checked']} "
          f"(paper: 230)")
    print(f"  members whose import filter blocks an AS not blocked on export: "
          f"{summary['violations']} (paper: 0)")
    print(f"  fraction with import more permissive than export: "
          f"{summary['import_more_permissive']:.2f} (paper: ~0.5)")

    assert report.members_checked > 0
    assert report.holds
