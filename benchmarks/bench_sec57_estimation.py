"""Section 5.7: global estimation of IXP peering links.

The estimator applies the paper's *assumed* densities; the reachability
matrix supplies the *measured* per-IXP densities, so the bench also
prints the assumption-vs-measurement comparison of section 5.7.
"""

from repro.analysis.estimation import (
    GlobalEstimator,
    IXPEstimate,
    measured_densities,
)


def _estimates(scenario):
    estimates = []
    for spec in scenario.internet.ixp_specs:
        ixp = scenario.ixps[spec.name]
        estimates.append(IXPEstimate(
            name=spec.name,
            members=len(ixp.members),
            region="europe",
            pricing=spec.pricing,
            has_route_server=True,
            member_asns=set(ixp.members),
        ))
    # Add the non-European IXPs of the paper's global extrapolation as
    # synthetic entries without member lists (14 NA + 11 Asia/Pacific + 2),
    # scaled consistently with the scenario's member scale.
    scale = scenario.config.generator.ixp_member_scale
    def scaled(members):
        return max(10, int(members * scale))
    for index in range(14):
        estimates.append(IXPEstimate(name=f"NA-{index}", members=scaled(120),
                                     region="north-america"))
    for index in range(11):
        estimates.append(IXPEstimate(name=f"AP-{index}", members=scaled(90),
                                     region="asia-pacific"))
    estimates.append(IXPEstimate(name="LATAM-0", members=scaled(60), region="latam"))
    estimates.append(IXPEstimate(name="AF-0", members=scaled(55), region="africa"))
    return estimates


def test_global_estimation(scenario, reachability, benchmark):
    def run():
        base = GlobalEstimator().estimate(_estimates(scenario))
        conservative = GlobalEstimator(density_cap=0.60).estimate(
            _estimates(scenario))
        measured = measured_densities(reachability)
        return base, conservative, measured

    base, conservative, measured = benchmark(run)

    print("\nSection 5.7 — measured density per reconstructed IXP "
          "(assumption check)")
    for name, row in sorted(measured.items(),
                            key=lambda item: -item[1]["members"])[:6]:
        print(f"  {name:<10} members={int(row['members']):>4} "
              f"link-density={row['link_density']:.2f} "
              f"mean-member-density={row['mean_member_density']:.2f}")
    assert measured
    assert all(0.0 <= row["link_density"] <= 1.0 for row in measured.values())

    print("\nSection 5.7 — global IXP peering estimation")
    print(f"  IXPs considered: {len(base.estimates)}")
    print(f"  estimated IXP peerings:        {base.total_ixp_peerings}")
    print(f"  estimated unique AS peerings:  {base.unique_peerings}")
    print(f"  conservative (60% cap):        {conservative.total_ixp_peerings} / "
          f"{conservative.unique_peerings}")
    by_region = base.by_region()
    for region, count in sorted(by_region.items()):
        print(f"    {region:<15} {count}")
    print("  (paper: 686K global IXP peerings, 511K unique; conservative "
          "596K / 422K)")

    assert base.total_ixp_peerings > base.unique_peerings > 0
    assert conservative.total_ixp_peerings <= base.total_ixp_peerings
    assert by_region["europe"] > by_region["north-america"] / 4
