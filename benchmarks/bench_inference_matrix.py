"""Inference-backend matrix: object vs bitset, timed and verified.

Mirrors ``bench_backend_matrix.py`` for the *inference* data plane.
Two things at once, per scenario size:

* **equivalence** — the bitset backend must reproduce the object
  engine's result exactly: links, per-IXP link sets, Table 2 rows,
  reachability objects (mode / listed / sources / prefix counts) and
  active query spend;
* **speed** — the same end-to-end inference workload
  (``scenario.run_inference``) is timed per backend after one warm-up
  run, so the trajectory JSON captures the bitset plane's speedup next
  to every other bench.

``benchmarks/run_all.py`` additionally records per-backend wall times
for every registered scenario in the ``inference_matrix`` section of
``BENCH_<date>.json`` (and exits non-zero on any equivalence mismatch).
"""

from __future__ import annotations

import pytest

from repro.pipeline import ArtifactCache, ScenarioRun
from repro.runtime.context import INFERENCE_BACKENDS
from repro.scenarios.spec import get_scenario


def inference_workload(size: str):
    """The scenario the inference backends are raced on."""
    spec = get_scenario("europe2013")
    run = ScenarioRun(spec.config(size), cache=ArtifactCache())
    return run.scenario()


@pytest.mark.parametrize("size", ["tiny", "bench"])
def test_inference_backends_bit_identical(size):
    """Acceptance: bitset == object on the full scenario workload at
    tiny and bench sizes (links, Table 2, provenance, query counts —
    the shared ``MLPInferenceResult.identical_to`` predicate)."""
    scenario = inference_workload(size)
    obj = scenario.run_inference(inference_backend="object")
    bit = scenario.run_inference(inference_backend="bitset")
    assert obj.identical_to(bit)


@pytest.mark.parametrize("inference_backend", INFERENCE_BACKENDS)
def test_inference_backend_throughput(benchmark, scenario, inference_backend):
    """Bench-size end-to-end inference, one timed row per backend
    (compare the two rows in the benchmark table / BENCH trajectory)."""
    def infer():
        return scenario.run_inference(inference_backend=inference_backend)

    infer()  # warm shared memos (archive, observation planes)
    result = benchmark.pedantic(infer, rounds=3, iterations=1)
    assert len(result.per_ixp) == 13
    assert result.all_links()
