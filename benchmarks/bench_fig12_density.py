"""Figure 12: per-member peering density at each route server."""

from repro.analysis.density import density_from_matrix


def test_peering_density(scenario, reachability, benchmark):
    members_by_ixp = {name: scenario.graph.rs_members_of_ixp(name)
                      for name in reachability.planes}

    report = benchmark(density_from_matrix, reachability, members_by_ixp, True)

    print("\nFigure 12 — mean peering density per RS member per IXP")
    full_data_ixps = [name for name in scenario.rs_looking_glasses
                      if name in report.per_member]
    for name in sorted(full_data_ixps,
                       key=lambda n: -len(members_by_ixp.get(n, []))):
        mean = report.mean_density(name)
        print(f"  {name:<10} {mean:.2f}  ({len(report.per_member[name])} members)")
    print("  (paper: 0.79-0.95 at the IXPs with full connectivity data)")

    densities = [report.mean_density(name) for name in full_data_ixps
                 if len(members_by_ixp.get(name, [])) >= 15]
    assert densities
    assert all(d >= 0.55 for d in densities)
    assert max(d for d in densities) > 0.7
