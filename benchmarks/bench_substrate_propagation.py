"""Substrate benchmark: the valley-free propagation engine.

Not a paper table, but the substrate every passive measurement depends
on; benchmarked so regressions in the hot path are visible.
"""

from repro.bgp.propagation import OriginSpec, PropagationEngine


def test_propagation_engine_throughput(scenario, benchmark):
    graph = scenario.graph
    adjacencies = graph.propagation_adjacencies()
    observers = [vp.asn for vp in scenario.vantage_points]
    origins = [OriginSpec(asn=node.asn, prefixes=list(node.prefixes))
               for node in list(graph.nodes())[:120] if node.prefixes]

    def propagate():
        engine = PropagationEngine(adjacencies, record_at=observers)
        return engine.propagate(origins)

    result = benchmark.pedantic(propagate, rounds=1, iterations=1)
    assert result.origins()
    assert any(result.routes_at(observer) for observer in observers)
