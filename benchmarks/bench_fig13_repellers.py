"""Figure 13 / section 5.5: repellers — members blocked by EXCLUDE communities."""

from repro.analysis.repellers import RepellerAnalysis
from repro.topology.customer_cone import customer_cone


def test_repellers(scenario, reachability, benchmark):
    graph = scenario.graph
    analysis = RepellerAnalysis(
        customer_cone=lambda asn: customer_cone(graph, asn),
        direct_customers=lambda asn: set(graph.customers(asn)))
    members = {name: graph.rs_members_of_ixp(name)
               for name in reachability.planes}

    report = benchmark(analysis.analyse_matrix, reachability, members)

    print("\nFigure 13 / section 5.5 — repellers")
    print(f"  EXCLUDE applications observed:    {report.total_exclusions} "
          f"(paper: 1,795)")
    print(f"  members blocked at least once:    {report.num_repellers} "
          f"(paper: 570 of 1,363)")
    print(f"  blocked AS in blocker's cone:     "
          f"{report.fraction_customer_cone():.1%} (paper: 77%)")
    print(f"  provider blocking a customer:     "
          f"{report.fraction_provider_blocks_customer():.1%} (paper: 12%)")
    hypergiants = set(scenario.internet.hypergiants)
    print("  top repellers (ASN, times blocked, hypergiant?):")
    for asn, count in report.top_repellers(8):
        print(f"    AS{asn:<8} {count:>4}  {'yes' if asn in hypergiants else 'no'}")
    scoped = report.by_geographic_scope(scenario.peeringdb)
    for scope, frequencies in sorted(scoped.items()):
        top = frequencies[0] if frequencies else 0
        print(f"  scope {scope:<10} repellers={len(frequencies):>4} max-blocked={top}")

    assert report.total_exclusions > 0
    assert report.num_repellers > 0
    top_asns = {asn for asn, _ in report.top_repellers(10)}
    assert top_asns & hypergiants
