"""Figure 1: bilateral n(n-1)/2 vs multilateral c*n session scaling."""

from repro.bgp.session import bilateral_session_count, multilateral_session_count


def test_session_scaling(scenario, benchmark):
    def compute():
        rows = []
        for name, ixp in scenario.ixps.items():
            counts = ixp.session_counts()
            rows.append((name, counts["members"], counts["bilateral_sessions"],
                         counts["multilateral_sessions"]))
        return rows

    rows = benchmark(compute)
    print("\nFigure 1 — sessions needed for a full mesh at each IXP")
    print(f"  {'IXP':<10} {'members':>8} {'bilateral':>10} {'multilateral':>13}")
    for name, members, bilateral, multilateral in sorted(rows, key=lambda r: -r[1]):
        print(f"  {name:<10} {members:>8} {bilateral:>10} {multilateral:>13}")
    for _, members, bilateral, multilateral in rows:
        assert bilateral == members * (members - 1) // 2
        assert multilateral == members
        if members > 3:
            assert multilateral < bilateral


def test_paper_example_six_ases():
    assert bilateral_session_count(6) == 15
    assert multilateral_session_count(6, 2) == 12
