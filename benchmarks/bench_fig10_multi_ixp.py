"""Figure 10: IXP presences vs route-server participations."""

from repro.analysis.policies import PolicyAnalysis


def test_multi_ixp_matrix(scenario, benchmark):
    analysis = PolicyAnalysis(scenario.graph, scenario.peeringdb)
    ixp_names = list(scenario.ixps)

    matrix = benchmark(analysis.multi_ixp_matrix, ixp_names)

    print("\nFigure 10 — IXP presences vs RS participations")
    print(f"  ASes counted: {matrix.total}")
    print(f"  at one IXP and using its RS:     "
          f"{matrix.fraction_single_ixp_with_rs():.1%} (paper: 55.8%)")
    print(f"  at IXP(s) but using no RS:       "
          f"{matrix.fraction_no_rs():.1%} (paper: 13.4%)")
    print(f"  multi-IXP, inconsistent RS use:  "
          f"{matrix.fraction_inconsistent_multi_ixp():.1%} (paper: 7.9%)")
    cells = sorted(matrix.cells.items())
    print("  matrix cells (ixp presences, rs participations) -> ASes:")
    for (presences, rs_count), count in cells[:12]:
        print(f"    ({presences}, {rs_count}): {count}")

    assert matrix.total > 0
    assert matrix.fraction_single_ixp_with_rs() > 0.25
    assert 0.0 < matrix.fraction_no_rs() < 0.6
