"""Ablation: the reciprocity assumption (DESIGN.md, design decision 1).

Compares link counts and precision with the reciprocity requirement on
(the paper's algorithm) and off (a single ALLOW direction suffices).
"""


def test_reciprocity_ablation(scenario, benchmark):
    truth = scenario.ground_truth_links()

    def run_both():
        strict = scenario.run_inference(require_reciprocity=True)
        loose = scenario.run_inference(require_reciprocity=False)
        return set(strict.all_links()), set(loose.all_links())

    strict_links, loose_links = benchmark.pedantic(run_both, rounds=1,
                                                   iterations=1)

    def precision(links):
        return len(links & truth) / len(links) if links else 0.0

    print("\nAblation — reciprocity assumption")
    print(f"  with reciprocity:    {len(strict_links)} links, "
          f"precision {precision(strict_links):.3f}")
    print(f"  without reciprocity: {len(loose_links)} links, "
          f"precision {precision(loose_links):.3f}")

    assert strict_links <= loose_links
    assert precision(strict_links) >= precision(loose_links)
    assert precision(strict_links) >= 0.98
