"""Table 1: per-IXP route-server community grammars.

Regenerates the Table 1 rows from the scheme registry and benchmarks the
encode + classify round-trip that every inference step depends on.
"""

from repro.ixp.community_schemes import RSAction


def test_table1_rows(scenario, benchmark):
    registry = scenario.schemes

    def render_table1():
        return registry.table1()

    rows = benchmark(render_table1)
    assert len(rows) == 13
    print("\nTable 1 — RS community grammars")
    for row in rows:
        print(f"  {row['IXP']:<10} RS-ASN={row['RS-ASN']:<6} ALL={row['ALL']:<12} "
              f"EXCLUDE={row['EXCLUDE']:<16} NONE={row['NONE']:<12} "
              f"INCLUDE={row['INCLUDE']}")


def test_encode_classify_roundtrip(scenario, benchmark):
    scheme = scenario.schemes.get("DE-CIX")
    members = scenario.graph.rs_members_of_ixp("DE-CIX")
    excluded = [asn for asn in members if asn < 65536][:5]

    def roundtrip():
        communities = scheme.encode_policy("all-except", excluded)
        classified = scheme.classify_set(communities)
        return {c.peer_asn for _, c in classified if c.action is RSAction.EXCLUDE}

    decoded = benchmark(roundtrip)
    assert decoded == set(excluded)
